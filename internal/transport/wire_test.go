package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"runtime"
	"testing"
)

func frameEq(a, b Frame) bool {
	if a.Type != b.Type || a.Rank != b.Rank || a.Tag != b.Tag {
		return false
	}
	if len(a.Payload) != len(b.Payload) {
		return false
	}
	return bytes.Equal(a.Payload, b.Payload)
}

// TestFrameRoundTrip drives the codec through the corner cases the wire
// must survive: zero-length payloads, maximum tag and rank values, and a
// randomized property sweep.
func TestFrameRoundTrip(t *testing.T) {
	cases := []Frame{
		{Type: FrameHello, Rank: 0, Tag: 0},
		{Type: FrameData, Rank: 0, Tag: 0, Payload: []byte{}},
		{Type: FrameData, Rank: 3, Tag: MaxTag, Payload: []byte("payload")},
		{Type: FrameData, Rank: MaxTag, Tag: 17, Payload: make([]byte, 4096)},
		{Type: FrameBarrier, Rank: 1, Tag: MaxTag, Payload: []byte{BarrierEnter}},
		{Type: FrameBarrier, Rank: 2, Tag: 0, Payload: []byte{BarrierRelease}},
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		p := make([]byte, rng.Intn(512))
		rng.Read(p)
		types := []byte{FrameHello, FrameData, FrameBarrier}
		cases = append(cases, Frame{
			Type:    types[rng.Intn(len(types))],
			Rank:    rng.Intn(1 << 20),
			Tag:     rng.Intn(MaxTag + 1),
			Payload: p,
		})
	}
	for i, f := range cases {
		enc := EncodeFrame(f)
		if len(enc) != HeaderLen+len(f.Payload) {
			t.Fatalf("case %d: encoded length %d, want %d", i, len(enc), HeaderLen+len(f.Payload))
		}
		got, n, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if n != len(enc) {
			t.Fatalf("case %d: consumed %d of %d", i, n, len(enc))
		}
		if !frameEq(got, f) {
			t.Fatalf("case %d: round trip %+v -> %+v", i, f, got)
		}
		// Stream reader must agree with the slice decoder, including when
		// frames are concatenated.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("case %d: write: %v", i, err)
		}
		for k := 0; k < 2; k++ {
			rf, err := ReadFrame(&buf)
			if err != nil {
				t.Fatalf("case %d: read %d: %v", i, k, err)
			}
			if !frameEq(rf, f) {
				t.Fatalf("case %d: stream round trip mismatch", i)
			}
		}
		if _, err := ReadFrame(&buf); err != io.EOF {
			t.Fatalf("case %d: read past end: %v, want io.EOF", i, err)
		}
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	good := EncodeFrame(Frame{Type: FrameData, Rank: 1, Tag: 2, Payload: []byte("abc")})

	// Every strict prefix is a short frame.
	for n := 0; n < len(good); n++ {
		if _, _, err := DecodeFrame(good[:n]); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("prefix %d: err %v, want ErrShortFrame", n, err)
		}
	}
	// Unknown type.
	bad := append([]byte(nil), good...)
	bad[4] = 99
	if _, _, err := DecodeFrame(bad); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("bad type: err %v", err)
	}
	// Hostile length prefix.
	bad = append([]byte(nil), good...)
	bad[0], bad[1], bad[2], bad[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := DecodeFrame(bad); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("hostile length: err %v", err)
	}
	// Tag above MaxTag (high bit set).
	bad = append([]byte(nil), good...)
	bad[9] = 0x80
	if _, _, err := DecodeFrame(bad); err == nil {
		t.Fatalf("tag overflow: want error")
	}
	// Rank above MaxTag.
	bad = append([]byte(nil), good...)
	bad[5] = 0x80
	if _, _, err := DecodeFrame(bad); err == nil {
		t.Fatalf("rank overflow: want error")
	}
	// Truncated stream mid-frame.
	if _, err := ReadFrame(bytes.NewReader(good[:len(good)-1])); err == nil {
		t.Fatalf("truncated stream: want error")
	}
}

// FuzzDecodeFrame asserts the decoder never panics on malformed input, and
// that anything it accepts re-encodes to the bytes it consumed.
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(EncodeFrame(Frame{Type: FrameHello, Rank: 0, Tag: 0}))
	f.Add(EncodeFrame(Frame{Type: FrameData, Rank: 5, Tag: MaxTag, Payload: []byte("xyz")}))
	f.Add(EncodeFrame(Frame{Type: FrameBarrier, Rank: 1, Tag: 3, Payload: []byte{BarrierEnter}}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 2, 0, 0, 0, 1, 0, 0, 0, 2})
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			return
		}
		if n < HeaderLen || n > len(b) {
			t.Fatalf("consumed %d of %d", n, len(b))
		}
		enc := EncodeFrame(fr)
		if !bytes.Equal(enc, b[:n]) {
			t.Fatalf("re-encode mismatch")
		}
	})
}

// FuzzReadFrame feeds the stream reader arbitrary byte streams — truncated
// headers, hostile length prefixes, garbage types — and asserts it never
// panics, never over-reads, and that every frame it accepts re-encodes to
// exactly the bytes it consumed.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add(EncodeFrame(Frame{Type: FrameHello, Rank: 0, Tag: 0}))
	f.Add(EncodeFrame(Frame{Type: FrameData, Rank: 2, Tag: 9, Payload: []byte("abc")}))
	f.Add(EncodeFrame(Frame{Type: FrameHeartbeat, Rank: 1, Tag: 0}))
	f.Add(append(EncodeFrame(Frame{Type: FrameAck, Rank: 3, Tag: 0, Payload: []byte{0, 0, 0, 0, 0, 0, 0, 9}}),
		EncodeFrame(Frame{Type: FrameBye, Rank: 3, Tag: 0})...))
	// Hostile length prefix: claims ~4 GiB with 8 bytes of payload behind it.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 2, 0, 0, 0, 1, 0, 0, 0, 2, 1, 2, 3, 4, 5, 6, 7, 8})
	// Length prefix exactly at the cap, no payload.
	f.Add([]byte{0x40, 0x00, 0x00, 0x00, 2, 0, 0, 0, 1, 0, 0, 0, 2})
	// Valid frame followed by a truncated one.
	f.Add(append(EncodeFrame(Frame{Type: FrameData, Rank: 0, Tag: 1, Payload: []byte("tail")}),
		0, 0, 0, 9, 2))
	f.Fuzz(func(t *testing.T, b []byte) {
		r := bytes.NewReader(b)
		for {
			before := len(b) - r.Len()
			fr, err := ReadFrame(r)
			if err != nil {
				return
			}
			consumed := len(b) - r.Len() - before
			enc := EncodeFrame(fr)
			if len(enc) != consumed {
				t.Fatalf("frame of %d bytes consumed %d from the stream", len(enc), consumed)
			}
			if !bytes.Equal(enc, b[before:before+consumed]) {
				t.Fatalf("re-encode mismatch at offset %d", before)
			}
		}
	})
}

// TestReadFrameHostileLength: a header claiming a MaxPayload-sized frame
// backed by a few real bytes must fail with a truncated-frame error, and —
// the point of the chunked reader — must not allocate anywhere near the
// claimed size while doing so.
func TestReadFrameHostileLength(t *testing.T) {
	hostile := make([]byte, HeaderLen+20)
	binary.BigEndian.PutUint32(hostile[0:], MaxPayload) // claims 1 GiB
	hostile[4] = FrameData
	binary.BigEndian.PutUint32(hostile[5:], 1)
	binary.BigEndian.PutUint32(hostile[9:], 2)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := ReadFrame(bytes.NewReader(hostile))
	runtime.ReadMemStats(&after)

	if err == nil {
		t.Fatal("hostile length prefix accepted")
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("hostile prefix error %v, want truncated-frame wrapping io.ErrUnexpectedEOF", err)
	}
	// The reader may stage up to one readChunk (1 MiB); give it a generous
	// 64 MiB of slack — the failure mode being excluded is the 1 GiB
	// up-front allocation.
	if alloc := after.TotalAlloc - before.TotalAlloc; alloc > 64<<20 {
		t.Fatalf("hostile 1 GiB length prefix drove %d bytes of allocation", alloc)
	}
}
