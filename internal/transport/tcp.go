package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPConfig configures one rank of a TCP communicator.
type TCPConfig struct {
	// Rank is this process's rank in [0, len(Peers)).
	Rank int
	// Peers lists every rank's address ("host:port"), own rank included;
	// Peers[Rank] is the address this endpoint listens on.
	Peers []string
	// Listener, when non-nil, is a pre-bound listener used instead of
	// binding Peers[Rank] — tests use it to avoid port races.
	Listener net.Listener
	// RendezvousTimeout bounds the whole mesh setup: dialing every peer
	// (with retry/backoff) and receiving every peer's hello. Default 15s.
	RendezvousTimeout time.Duration
	// DialBackoff is the initial delay between dial retries; it doubles up
	// to 1s. Default 25ms.
	DialBackoff time.Duration
	// WriteTimeout bounds each frame write so a wedged peer cannot block a
	// writer forever. Default 30s.
	WriteTimeout time.Duration
	// Logf, when non-nil, receives diagnostic messages (dropped stray
	// connections, write failures).
	Logf func(format string, args ...any)
}

func (cfg TCPConfig) withDefaults() TCPConfig {
	if cfg.RendezvousTimeout <= 0 {
		cfg.RendezvousTimeout = 15 * time.Second
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 25 * time.Millisecond
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg
}

var errClosed = errors.New("transport: endpoint closed")

// framePool recycles outbound data-frame buffers: Isend fills one per
// message and the peer's writer goroutine returns it once the bytes are on
// the wire. Frames dropped during shutdown or on a write error are simply
// left to the garbage collector.
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// DialTCP joins the TCP communicator described by cfg: it listens on its
// own address, dials every peer with retry/backoff, and waits until every
// peer has dialed in, so the full mesh is up when it returns. Each ordered
// rank pair (i → j) uses one dedicated connection carrying i's frames to j;
// the dialing side writes, the accepting side reads — see docs/TRANSPORT.md.
func DialTCP(cfg TCPConfig) (Endpoint, error) {
	cfg = cfg.withDefaults()
	size := len(cfg.Peers)
	if size == 0 {
		return nil, fmt.Errorf("transport: empty peer list")
	}
	if cfg.Rank < 0 || cfg.Rank >= size {
		return nil, fmt.Errorf("transport: rank %d out of world of %d", cfg.Rank, size)
	}

	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Peers[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("transport: rank %d cannot listen on %s: %w", cfg.Rank, cfg.Peers[cfg.Rank], err)
		}
	}

	ep := &tcpEndpoint{
		rank:         cfg.Rank,
		size:         size,
		ln:           ln,
		writeTimeout: cfg.WriteTimeout,
		logf:         cfg.Logf,
		mb:           newMailbox(size),
		bar:          newBarrierState(size),
		peers:        make([]*peerLink, size),
		links:        make([]linkCtrs, size),
		helloSeen:    make([]bool, size),
	}
	ep.helloCond = sync.NewCond(&ep.connMu)
	ep.wg.Add(1)
	go ep.acceptLoop()

	deadline := time.Now().Add(cfg.RendezvousTimeout)

	// Dial every peer concurrently, retrying with exponential backoff
	// until the rendezvous deadline.
	dialErrs := make([]error, size)
	var dwg sync.WaitGroup
	for j := 0; j < size; j++ {
		if j == cfg.Rank {
			continue
		}
		dwg.Add(1)
		go func(j int) {
			defer dwg.Done()
			dialErrs[j] = ep.dialPeer(j, cfg.Peers[j], cfg.DialBackoff, deadline)
		}(j)
	}
	dwg.Wait()
	for j, err := range dialErrs {
		if err != nil {
			ep.Close()
			return nil, fmt.Errorf("transport: rank %d cannot reach rank %d at %s: %w",
				cfg.Rank, j, cfg.Peers[j], err)
		}
	}

	// Wait until every peer has dialed in (their hello identifies them).
	expire := time.AfterFunc(time.Until(deadline), func() {
		ep.connMu.Lock()
		ep.helloExpired = true
		ep.connMu.Unlock()
		ep.helloCond.Broadcast()
	})
	ep.connMu.Lock()
	for ep.helloCnt < size-1 && !ep.helloExpired {
		ep.helloCond.Wait()
	}
	ok := ep.helloCnt == size-1
	var missing []int
	if !ok {
		for j, seen := range ep.helloSeen {
			if j != cfg.Rank && !seen {
				missing = append(missing, j)
			}
		}
	}
	ep.connMu.Unlock()
	expire.Stop()
	if !ok {
		ep.Close()
		return nil, fmt.Errorf("transport: rank %d rendezvous timed out after %v waiting for ranks %v",
			cfg.Rank, cfg.RendezvousTimeout, missing)
	}
	return ep, nil
}

// dialPeer establishes the outbound connection to one peer, retrying with
// exponential backoff until the deadline, then sends the hello frame and
// starts the peer's writer goroutine.
func (ep *tcpEndpoint) dialPeer(j int, addr string, backoff time.Duration, deadline time.Time) error {
	const maxBackoff = time.Second
	var lastErr error
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("dial budget exhausted")
			}
			return lastErr
		}
		attempt := 2 * time.Second
		if remaining < attempt {
			attempt = remaining
		}
		conn, err := net.DialTimeout("tcp", addr, attempt)
		if err == nil {
			conn.SetWriteDeadline(time.Now().Add(ep.writeTimeout))
			err = WriteFrame(conn, Frame{Type: FrameHello, Rank: ep.rank})
			conn.SetWriteDeadline(time.Time{})
			if err == nil {
				p := newPeerLink(conn)
				ep.peers[j] = p
				ep.wg.Add(1)
				go func() {
					defer ep.wg.Done()
					ep.writeLoop(j, p)
				}()
				return nil
			}
			conn.Close()
		}
		lastErr = err
		if time.Now().Add(backoff).After(deadline) {
			return lastErr
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// tcpEndpoint is one rank of a TCP communicator.
type tcpEndpoint struct {
	rank, size   int
	ln           net.Listener
	writeTimeout time.Duration
	logf         func(string, ...any)

	mb  *mailbox
	bar *barrierState

	peers []*peerLink // outbound links; nil at own rank

	connMu       sync.Mutex
	helloCond    *sync.Cond
	inConns      []net.Conn
	helloSeen    []bool
	helloCnt     int
	helloExpired bool

	closed    atomic.Bool
	closeOnce sync.Once
	wg        sync.WaitGroup

	msgs  atomic.Int64
	bytes atomic.Int64
	links []linkCtrs // per-peer traffic counters, indexed by rank
	barT  barrierCtrs
}

func (ep *tcpEndpoint) Rank() int { return ep.rank }
func (ep *tcpEndpoint) Size() int { return ep.size }

func (ep *tcpEndpoint) OnArrival(fn func()) { ep.mb.setNotify(fn) }

func (ep *tcpEndpoint) Stats() (messages, bytes int64) {
	return ep.msgs.Load(), ep.bytes.Load()
}

// Isend sends data to dest with the given tag. The payload is serialized
// into a frame before return, so the caller may reuse its buffer; delivery
// is asynchronous through the peer's writer goroutine.
func (ep *tcpEndpoint) Isend(data []byte, dest, tag int) Request {
	if dest < 0 || dest >= ep.size {
		panic(fmt.Sprintf("transport: Isend to rank %d out of world of %d", dest, ep.size))
	}
	if tag < 0 || tag > MaxTag {
		panic(fmt.Sprintf("transport: Isend tag %d out of range", tag))
	}
	ep.msgs.Add(1)
	ep.bytes.Add(int64(len(data)))
	lc := &ep.links[dest]
	lc.sentFrames.Add(1)
	lc.sentBytes.Add(int64(len(data)))
	if dest == ep.rank {
		lc.recvFrames.Add(1)
		lc.recvBytes.Add(int64(len(data)))
		buf := make([]byte, len(data))
		copy(buf, data)
		ep.mb.push(envelope{source: ep.rank, tag: tag, data: buf})
	} else {
		fb := framePool.Get().(*[]byte)
		*fb = AppendFrame((*fb)[:0], Frame{Type: FrameData, Rank: ep.rank, Tag: tag, Payload: data})
		ep.peers[dest].enqueue(*fb, fb)
	}
	return &netRequest{done: true, source: dest, tag: tag}
}

// Irecv posts a receive for (source|Any, tag|Any). On a failed or closed
// endpoint the returned request is already canceled, never left hanging.
func (ep *tcpEndpoint) Irecv(source, tag int) Request {
	if source != Any && (source < 0 || source >= ep.size) {
		panic(fmt.Sprintf("transport: Irecv source %d out of world of %d", source, ep.size))
	}
	if tag != Any && (tag < 0 || tag > MaxTag) {
		panic(fmt.Sprintf("transport: Irecv tag %d out of range", tag))
	}
	req := &netRequest{isRecv: true, source: source, tag: tag, mb: ep.mb}
	ep.mb.post(req)
	return req
}

// fail marks the communicator broken (protocol corruption): every posted
// receive is canceled and every barrier waiter errors out.
func (ep *tcpEndpoint) fail(err error) {
	ep.logf("transport: rank %d: %v", ep.rank, err)
	ep.bar.fail(err)
	ep.mb.fail()
}

// peerLost records that a peer's connection ended (clean shutdown or
// crash — TCP cannot tell them apart). Only operations that can no longer
// complete are failed: posted receives naming that source, and barrier
// waits still missing that peer's participation. Everything else — data
// already in flight from other peers, barrier releases already on the
// wire — proceeds, which is what lets ranks shut down in their natural
// staggered order.
func (ep *tcpEndpoint) peerLost(src int, err error) {
	ep.logf("transport: rank %d lost peer %d: %v", ep.rank, src, err)
	ep.bar.depart(src, fmt.Errorf("transport: rank %d is gone: %w", src, err))
	ep.mb.depart(src)
}

func (ep *tcpEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ep.connMu.Lock()
		ep.inConns = append(ep.inConns, conn)
		ep.connMu.Unlock()
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			ep.readLoop(conn)
		}()
	}
}

// readLoop serves one inbound connection: a hello frame identifies the
// sender, then data frames are demultiplexed into the mailbox (where the
// runtime's tag/source matching picks them up) and barrier frames into the
// barrier state.
func (ep *tcpEndpoint) readLoop(conn net.Conn) {
	f, err := ReadFrame(conn)
	if err != nil || f.Type != FrameHello || f.Rank < 0 || f.Rank >= ep.size || f.Rank == ep.rank {
		// A stray or malformed connection (port scan, misconfiguration):
		// drop it without failing the communicator.
		ep.logf("transport: rank %d dropped stray connection from %v", ep.rank, conn.RemoteAddr())
		conn.Close()
		return
	}
	src := f.Rank
	ep.connMu.Lock()
	if !ep.helloSeen[src] {
		ep.helloSeen[src] = true
		ep.helloCnt++
	}
	ep.connMu.Unlock()
	ep.helloCond.Broadcast()

	for {
		f, err := ReadFrame(conn)
		if err != nil {
			// End of stream: the peer shut down or crashed. That is a
			// departure, not a communicator failure — ranks finishing at
			// different times is the normal course of a run.
			conn.Close()
			if !ep.closed.Load() {
				ep.peerLost(src, err)
			}
			return
		}
		switch f.Type {
		case FrameData:
			if f.Rank != src {
				conn.Close()
				ep.fail(fmt.Errorf("rank %d sent frame claiming rank %d", src, f.Rank))
				return
			}
			ep.links[src].recvFrames.Add(1)
			ep.links[src].recvBytes.Add(int64(len(f.Payload)))
			ep.mb.push(envelope{source: src, tag: f.Tag, data: f.Payload})
		case FrameBarrier:
			if len(f.Payload) != 1 {
				conn.Close()
				ep.fail(fmt.Errorf("rank %d sent malformed barrier frame", src))
				return
			}
			ep.links[src].recvFrames.Add(1)
			ep.links[src].recvBytes.Add(1)
			ep.bar.handle(src, f.Tag, f.Payload[0])
		default:
			// Redundant hello: ignore.
		}
	}
}

// writeLoop drains one peer's outbound queue onto its connection. On close
// it flushes everything already queued before shutting the connection down
// (graceful shutdown); on a write error it drops the queue and marks the
// peer departed.
func (ep *tcpEndpoint) writeLoop(dst int, p *peerLink) {
	for {
		p.mu.Lock()
		for len(p.q) == 0 && !p.stopped && p.err == nil {
			p.cond.Wait()
		}
		if p.err != nil || (p.stopped && len(p.q) == 0) {
			p.mu.Unlock()
			p.conn.Close()
			return
		}
		batch := p.q
		p.q = nil
		p.mu.Unlock()
		for _, b := range batch {
			p.conn.SetWriteDeadline(time.Now().Add(ep.writeTimeout))
			if _, err := p.conn.Write(b.data); err != nil {
				p.mu.Lock()
				p.err = err
				p.q = nil
				p.mu.Unlock()
				p.conn.Close()
				if !ep.closed.Load() {
					ep.peerLost(dst, fmt.Errorf("write: %w", err))
				}
				return
			}
			if b.owner != nil {
				*b.owner = (*b.owner)[:0]
				framePool.Put(b.owner)
			}
		}
	}
}

// Barrier blocks until every rank has entered it, using a centralized
// protocol over reserved barrier frames: every rank reports to rank 0,
// which releases everyone once all have arrived. Generations keep distinct
// barrier episodes apart; the collective-call contract (every rank calls
// Barrier the same number of times, in the same order relative to its own
// sends) makes the generation counters line up across ranks.
func (ep *tcpEndpoint) Barrier() error {
	start := time.Now()
	err := ep.barrier()
	ep.barT.observe(start)
	return err
}

func (ep *tcpEndpoint) barrier() error {
	b := ep.bar
	b.mu.Lock()
	if b.err != nil {
		defer b.mu.Unlock()
		return b.err
	}
	gen := b.gen
	b.gen++
	b.mu.Unlock()
	if ep.size == 1 {
		return nil
	}

	if ep.rank == 0 {
		b.mu.Lock()
		for len(b.entered[gen]) < ep.size-1 && b.err == nil && b.missingLocked(gen) < 0 {
			b.cond.Wait()
		}
		// A completed generation wins over a concurrent failure or
		// departure (a peer may exit cleanly right after its own Barrier
		// returned, its enter frame for this generation already received).
		var err error
		if len(b.entered[gen]) < ep.size-1 {
			if b.err != nil {
				err = b.err
			} else if j := b.missingLocked(gen); j >= 0 {
				err = fmt.Errorf("transport: barrier cannot complete: %w", b.departErr[j])
			}
		}
		delete(b.entered, gen)
		b.mu.Unlock()
		if err != nil {
			return err
		}
		release := EncodeFrame(Frame{Type: FrameBarrier, Rank: ep.rank, Tag: gen, Payload: []byte{BarrierRelease}})
		for j := 1; j < ep.size; j++ {
			ep.links[j].sentFrames.Add(1)
			ep.links[j].sentBytes.Add(1)
			ep.peers[j].enqueue(release, nil)
		}
		return nil
	}

	ep.links[0].sentFrames.Add(1)
	ep.links[0].sentBytes.Add(1)
	ep.peers[0].enqueue(EncodeFrame(Frame{Type: FrameBarrier, Rank: ep.rank, Tag: gen, Payload: []byte{BarrierEnter}}), nil)
	b.mu.Lock()
	for !b.released[gen] && b.err == nil && !b.departed[0] {
		b.cond.Wait()
	}
	// A release already received wins over a concurrent failure: rank 0
	// may exit immediately after releasing the last generation.
	var err error
	if !b.released[gen] {
		if b.err != nil {
			err = b.err
		} else {
			err = fmt.Errorf("transport: barrier cannot complete: %w", b.departErr[0])
		}
	}
	delete(b.released, gen)
	b.mu.Unlock()
	return err
}

// Links reports per-peer traffic and outbound queue depths.
func (ep *tcpEndpoint) Links() []LinkStats {
	out := make([]LinkStats, ep.size)
	for j := range out {
		depth := 0
		if p := ep.peers[j]; p != nil {
			depth = p.depth()
		}
		out[j] = ep.links[j].snapshot(j, depth)
	}
	return out
}

// BarrierStats reports how many barriers completed and the total wait.
func (ep *tcpEndpoint) BarrierStats() BarrierStats { return ep.barT.stats() }

// Close shuts the endpoint down gracefully: queued outbound frames are
// flushed, connections and the listener are closed, and any still-posted
// receive is canceled so no caller blocks on a closed communicator.
func (ep *tcpEndpoint) Close() error {
	ep.closeOnce.Do(func() {
		ep.closed.Store(true)
		ep.ln.Close()
		for _, p := range ep.peers {
			if p != nil {
				p.stop()
			}
		}
		// Writers flush their queues and close their own connections; the
		// inbound side is cut here, which ends the reader goroutines.
		ep.connMu.Lock()
		conns := append([]net.Conn(nil), ep.inConns...)
		ep.connMu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		ep.helloCond.Broadcast()
		ep.wg.Wait()
		ep.bar.fail(errClosed)
		ep.mb.fail()
	})
	return nil
}

// peerLink is the outbound half of one rank pair: an unbounded frame queue
// drained by a dedicated writer goroutine, so Isend never blocks on the
// network (the same eager decoupling the in-process substrate provides).
type peerLink struct {
	conn    net.Conn
	mu      sync.Mutex
	cond    *sync.Cond
	q       []outFrame
	stopped bool
	err     error
}

// outFrame is one queued wire frame; owner, when non-nil, is the pooled
// buffer backing data, returned to framePool after a successful write.
// Barrier frames enqueue the same slice to several peers and so carry no
// owner.
type outFrame struct {
	data  []byte
	owner *[]byte
}

func newPeerLink(conn net.Conn) *peerLink {
	p := &peerLink{conn: conn}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *peerLink) enqueue(frame []byte, owner *[]byte) {
	p.mu.Lock()
	if p.stopped || p.err != nil {
		p.mu.Unlock()
		return // dropped: the communicator is shutting down or broken
	}
	p.q = append(p.q, outFrame{frame, owner})
	p.mu.Unlock()
	p.cond.Signal()
}

// depth returns the number of frames queued behind the writer.
func (p *peerLink) depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.q)
}

func (p *peerLink) stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.cond.Signal()
}

// barrierState tracks barrier generations on both sides of the centralized
// protocol: rank 0 records which ranks entered each generation, other ranks
// wait for their release frame. Departed peers fail only the barriers they
// never participated in — a generation a peer entered before leaving still
// completes, so ranks may exit in staggered order.
type barrierState struct {
	mu        sync.Mutex
	cond      *sync.Cond
	gen       int
	entered   map[int]map[int]bool // generation → set of ranks that entered (rank 0 only)
	released  map[int]bool
	departed  []bool
	departErr []error
	err       error // communicator-wide failure (protocol violation or Close)
}

func newBarrierState(size int) *barrierState {
	b := &barrierState{
		entered:   map[int]map[int]bool{},
		released:  map[int]bool{},
		departed:  make([]bool, size),
		departErr: make([]error, size),
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrierState) handle(src, gen int, phase byte) {
	b.mu.Lock()
	switch phase {
	case BarrierEnter:
		set := b.entered[gen]
		if set == nil {
			set = map[int]bool{}
			b.entered[gen] = set
		}
		set[src] = true
	case BarrierRelease:
		b.released[gen] = true
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *barrierState) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *barrierState) depart(src int, err error) {
	b.mu.Lock()
	if src >= 0 && src < len(b.departed) {
		b.departed[src] = true
		if b.departErr[src] == nil {
			b.departErr[src] = err
		}
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// missingLocked returns a rank that departed without entering generation
// gen (so the generation can never complete), or -1. Callers hold b.mu.
func (b *barrierState) missingLocked(gen int) int {
	for j := 1; j < len(b.departed); j++ {
		if b.departed[j] && !b.entered[gen][j] {
			return j
		}
	}
	return -1
}
