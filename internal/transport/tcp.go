package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPConfig configures one rank of a TCP communicator.
type TCPConfig struct {
	// Rank is this process's rank in [0, len(Peers)).
	Rank int
	// Peers lists every rank's address ("host:port"), own rank included;
	// Peers[Rank] is the address this endpoint listens on.
	Peers []string
	// Listener, when non-nil, is a pre-bound listener used instead of
	// binding Peers[Rank] — tests use it to avoid port races.
	Listener net.Listener
	// RendezvousTimeout bounds the whole mesh setup: dialing every peer
	// (with retry/backoff) and receiving every peer's hello. Default 15s.
	RendezvousTimeout time.Duration
	// DialBackoff is the initial delay between dial retries; it doubles up
	// to 1s. Default 25ms.
	DialBackoff time.Duration
	// WriteTimeout bounds each frame write so a wedged peer cannot block a
	// writer forever. Default 30s.
	WriteTimeout time.Duration
	// Reconnect, when positive, turns on transparent link repair: a
	// connection that breaks without the clean-shutdown bye is redialed
	// with capped exponential backoff plus jitter for up to this long, and
	// unacknowledged frames are re-sent from a bounded window, so a
	// transient link drop is invisible above the Endpoint surface. Only
	// past the budget is the peer declared dead (a *PeerDeathError reaches
	// the FailureObserver callbacks). Every rank of a mesh must agree on
	// whether Reconnect is on: the acknowledgement stream that resend
	// depends on is only produced by reconnect-enabled receivers. Zero
	// (the default) keeps the original semantics — any connection loss is
	// an immediate departure — and changes nothing on the wire.
	Reconnect time.Duration
	// ReconnectBackoff is the initial delay between redial attempts after
	// an established link broke; it doubles, with jitter, up to 1s.
	// Default 10ms.
	ReconnectBackoff time.Duration
	// HeartbeatInterval, when positive, sends a heartbeat frame on every
	// link idle for that long, and drives the dead-peer monitor.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout declares a peer dead when nothing — data, barrier
	// or heartbeat traffic — arrived from it for this long. Zero takes
	// 4×HeartbeatInterval; ignored when HeartbeatInterval is zero.
	HeartbeatTimeout time.Duration
	// UnackedWindow bounds the frames retained per link for re-send while
	// Reconnect is on; overflowing it (acks not arriving for a whole
	// window) fails the link as dead. Default 4096.
	UnackedWindow int
	// Logf, when non-nil, receives diagnostic messages (dropped stray
	// connections, write failures, link repairs).
	Logf func(format string, args ...any)
}

func (cfg TCPConfig) withDefaults() TCPConfig {
	if cfg.RendezvousTimeout <= 0 {
		cfg.RendezvousTimeout = 15 * time.Second
	}
	if cfg.DialBackoff <= 0 {
		cfg.DialBackoff = 25 * time.Millisecond
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.ReconnectBackoff <= 0 {
		cfg.ReconnectBackoff = 10 * time.Millisecond
	}
	if cfg.HeartbeatInterval > 0 && cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 4 * cfg.HeartbeatInterval
	}
	if cfg.UnackedWindow <= 0 {
		cfg.UnackedWindow = 4096
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg
}

var errClosed = errors.New("transport: endpoint closed")

// ackEvery is the acknowledgement cadence of a reconnect-enabled receiver:
// one cumulative FrameAck per this many received frames.
const ackEvery = 32

// framePool recycles outbound data-frame buffers: Isend fills one per
// message and the peer's writer goroutine returns it once the bytes are on
// the wire (or, in reconnect mode, once the receiver acknowledged them).
// Frames dropped during shutdown or on a write error are simply left to the
// garbage collector.
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// DialTCP joins the TCP communicator described by cfg: it listens on its
// own address, dials every peer with retry/backoff, and waits until every
// peer has dialed in, so the full mesh is up when it returns. Each ordered
// rank pair (i → j) uses one dedicated connection carrying i's frames to j;
// the dialing side writes, the accepting side reads — see docs/TRANSPORT.md.
// With cfg.Reconnect set the accepting side also writes acknowledgement
// frames back on the same connection, which is what lets a redialing peer
// resume exactly where the broken connection left off.
func DialTCP(cfg TCPConfig) (Endpoint, error) {
	cfg = cfg.withDefaults()
	size := len(cfg.Peers)
	if size == 0 {
		return nil, fmt.Errorf("transport: empty peer list")
	}
	if cfg.Rank < 0 || cfg.Rank >= size {
		return nil, fmt.Errorf("transport: rank %d out of world of %d", cfg.Rank, size)
	}

	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Peers[cfg.Rank])
		if err != nil {
			return nil, fmt.Errorf("transport: rank %d cannot listen on %s: %w", cfg.Rank, cfg.Peers[cfg.Rank], err)
		}
	}

	ep := &tcpEndpoint{
		rank:         cfg.Rank,
		size:         size,
		ln:           ln,
		peerAddrs:    append([]string(nil), cfg.Peers...),
		writeTimeout: cfg.WriteTimeout,
		reconnect:    cfg.Reconnect,
		reconBackoff: cfg.ReconnectBackoff,
		hbInterval:   cfg.HeartbeatInterval,
		hbTimeout:    cfg.HeartbeatTimeout,
		window:       cfg.UnackedWindow,
		logf:         cfg.Logf,
		mb:           newMailbox(size),
		bar:          newBarrierState(size),
		peers:        make([]*peerLink, size),
		links:        make([]linkCtrs, size),
		rxCnt:        make([]atomic.Int64, size),
		lastRecv:     make([]atomic.Int64, size),
		helloSeen:    make([]bool, size),
		sawBye:       make([]atomic.Bool, size),
		deadPeer:     make([]bool, size),
		inStates:     make([]*inConnState, size),
		deadTimers:   make(map[int]*time.Timer),
		stopHB:       make(chan struct{}),
	}
	ep.helloCond = sync.NewCond(&ep.connMu)
	ep.wg.Add(1)
	go ep.acceptLoop()

	deadline := time.Now().Add(cfg.RendezvousTimeout)

	// Dial every peer concurrently, retrying with exponential backoff
	// until the rendezvous deadline.
	dialErrs := make([]error, size)
	var dwg sync.WaitGroup
	for j := 0; j < size; j++ {
		if j == cfg.Rank {
			continue
		}
		dwg.Add(1)
		go func(j int) {
			defer dwg.Done()
			dialErrs[j] = ep.dialPeer(j, cfg.Peers[j], cfg.DialBackoff, deadline)
		}(j)
	}
	dwg.Wait()
	for j, err := range dialErrs {
		if err != nil {
			ep.Close()
			return nil, fmt.Errorf("transport: rank %d cannot reach rank %d at %s: %w",
				cfg.Rank, j, cfg.Peers[j], err)
		}
	}

	// Wait until every peer has dialed in (their hello identifies them).
	expire := time.AfterFunc(time.Until(deadline), func() {
		ep.connMu.Lock()
		ep.helloExpired = true
		ep.connMu.Unlock()
		ep.helloCond.Broadcast()
	})
	ep.connMu.Lock()
	for ep.helloCnt < size-1 && !ep.helloExpired {
		ep.helloCond.Wait()
	}
	ok := ep.helloCnt == size-1
	var missing []int
	if !ok {
		for j, seen := range ep.helloSeen {
			if j != cfg.Rank && !seen {
				missing = append(missing, j)
			}
		}
	}
	ep.connMu.Unlock()
	expire.Stop()
	if !ok {
		ep.Close()
		return nil, fmt.Errorf("transport: rank %d rendezvous timed out after %v waiting for ranks %v",
			cfg.Rank, cfg.RendezvousTimeout, missing)
	}
	if ep.hbInterval > 0 {
		now := time.Now().UnixNano()
		for j := range ep.lastRecv {
			ep.lastRecv[j].Store(now) // silence counts from mesh-up, not epoch
		}
		ep.wg.Add(1)
		go ep.heartbeatLoop()
	}
	return ep, nil
}

// dialPeer establishes the outbound connection to one peer, retrying with
// exponential backoff until the deadline, then sends the hello frame and
// starts the peer's writer goroutine (and, in reconnect mode, the ack
// reader for the connection's reverse direction).
func (ep *tcpEndpoint) dialPeer(j int, addr string, backoff time.Duration, deadline time.Time) error {
	const maxBackoff = time.Second
	var lastErr error
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("dial budget exhausted")
			}
			return lastErr
		}
		attempt := 2 * time.Second
		if remaining < attempt {
			attempt = remaining
		}
		conn, err := net.DialTimeout("tcp", addr, attempt)
		if err == nil {
			conn.SetWriteDeadline(time.Now().Add(ep.writeTimeout))
			err = WriteFrame(conn, Frame{Type: FrameHello, Rank: ep.rank})
			conn.SetWriteDeadline(time.Time{})
			if err == nil {
				p := newPeerLink(conn)
				ep.peers[j] = p
				ep.wg.Add(1)
				go func() {
					defer ep.wg.Done()
					ep.writeLoop(j, p)
				}()
				if ep.reconnect > 0 {
					ep.wg.Add(1)
					go func() {
						defer ep.wg.Done()
						ep.ackLoop(p, conn)
					}()
				}
				return nil
			}
			conn.Close()
		}
		lastErr = err
		if time.Now().Add(backoff).After(deadline) {
			return lastErr
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// tcpEndpoint is one rank of a TCP communicator.
type tcpEndpoint struct {
	rank, size   int
	ln           net.Listener
	peerAddrs    []string
	writeTimeout time.Duration
	reconnect    time.Duration
	reconBackoff time.Duration
	hbInterval   time.Duration
	hbTimeout    time.Duration
	window       int
	logf         func(string, ...any)

	mb  *mailbox
	bar *barrierState

	peers []*peerLink // outbound links; nil at own rank

	connMu       sync.Mutex
	helloCond    *sync.Cond
	inConns      []net.Conn
	helloSeen    []bool
	helloCnt     int
	helloExpired bool
	inStates     []*inConnState      // per-src inbound connection ownership
	deadTimers   map[int]*time.Timer // pending dead-peer verdicts awaiting a re-hello

	failMu    sync.Mutex
	failFns   []func(rank int, err error)
	firstFail error
	deadPeer  []bool

	sawBye []atomic.Bool // peers that announced a clean shutdown

	closed    atomic.Bool
	closeOnce sync.Once
	hbOnce    sync.Once
	stopHB    chan struct{}
	wg        sync.WaitGroup

	msgs     atomic.Int64
	bytes    atomic.Int64
	links    []linkCtrs     // per-peer traffic counters, indexed by rank
	rxCnt    []atomic.Int64 // per-peer cumulative received stream frames (ack protocol)
	lastRecv []atomic.Int64 // per-peer unixnano of the last arrival (heartbeat monitor)
	barT     barrierCtrs
}

// inConnState serializes ownership of the inbound connection from one
// source rank: a re-hello closes the previous connection and waits for its
// reader to drain before the new one reports a resume point, so the
// cumulative receive count can never miss frames still buffered in a dying
// connection.
type inConnState struct {
	conn net.Conn
	done chan struct{}
}

func (ep *tcpEndpoint) Rank() int { return ep.rank }
func (ep *tcpEndpoint) Size() int { return ep.size }

func (ep *tcpEndpoint) OnArrival(fn func()) { ep.mb.setNotify(fn) }

func (ep *tcpEndpoint) Stats() (messages, bytes int64) {
	return ep.msgs.Load(), ep.bytes.Load()
}

// OnPeerFailure registers a callback invoked when a peer rank departs; nil
// unregisters all callbacks. Part of the FailureObserver surface.
func (ep *tcpEndpoint) OnPeerFailure(fn func(rank int, err error)) {
	ep.failMu.Lock()
	if fn == nil {
		ep.failFns = nil
	} else {
		ep.failFns = append(ep.failFns, fn)
	}
	ep.failMu.Unlock()
}

// PeerFailure returns the first peer departure observed, or nil.
func (ep *tcpEndpoint) PeerFailure() error {
	ep.failMu.Lock()
	defer ep.failMu.Unlock()
	return ep.firstFail
}

func (ep *tcpEndpoint) peerDead(j int) bool {
	ep.failMu.Lock()
	defer ep.failMu.Unlock()
	return ep.deadPeer[j]
}

// Isend sends data to dest with the given tag. The payload is serialized
// into a frame before return, so the caller may reuse its buffer; delivery
// is asynchronous through the peer's writer goroutine.
func (ep *tcpEndpoint) Isend(data []byte, dest, tag int) Request {
	if dest < 0 || dest >= ep.size {
		panic(fmt.Sprintf("transport: Isend to rank %d out of world of %d", dest, ep.size))
	}
	if tag < 0 || tag > MaxTag {
		panic(fmt.Sprintf("transport: Isend tag %d out of range", tag))
	}
	ep.msgs.Add(1)
	ep.bytes.Add(int64(len(data)))
	lc := &ep.links[dest]
	lc.sentFrames.Add(1)
	lc.sentBytes.Add(int64(len(data)))
	if dest == ep.rank {
		lc.recvFrames.Add(1)
		lc.recvBytes.Add(int64(len(data)))
		buf := make([]byte, len(data))
		copy(buf, data)
		ep.mb.push(envelope{source: ep.rank, tag: tag, data: buf})
	} else {
		fb := framePool.Get().(*[]byte)
		*fb = AppendFrame((*fb)[:0], Frame{Type: FrameData, Rank: ep.rank, Tag: tag, Payload: data})
		ep.peers[dest].enqueue(*fb, fb)
	}
	return &netRequest{done: true, source: dest, tag: tag}
}

// Irecv posts a receive for (source|Any, tag|Any). On a failed or closed
// endpoint the returned request is already canceled, never left hanging.
func (ep *tcpEndpoint) Irecv(source, tag int) Request {
	if source != Any && (source < 0 || source >= ep.size) {
		panic(fmt.Sprintf("transport: Irecv source %d out of world of %d", source, ep.size))
	}
	if tag != Any && (tag < 0 || tag > MaxTag) {
		panic(fmt.Sprintf("transport: Irecv tag %d out of range", tag))
	}
	req := &netRequest{isRecv: true, source: source, tag: tag, mb: ep.mb}
	ep.mb.post(req)
	return req
}

// fail marks the communicator broken (protocol corruption): every posted
// receive is canceled and every barrier waiter errors out.
func (ep *tcpEndpoint) fail(err error) {
	ep.logf("transport: rank %d: %v", ep.rank, err)
	ep.bar.fail(err)
	ep.mb.fail()
}

// peerLost records that a peer is gone — a clean shutdown, a crash, or a
// reconnect/heartbeat budget exhausted. Only operations that can no longer
// complete are failed: posted receives naming that source, and barrier
// waits still missing that peer's participation. Everything else — data
// already in flight from other peers, barrier releases already on the
// wire — proceeds, which is what lets ranks shut down in their natural
// staggered order. Registered FailureObserver callbacks fire exactly once
// per peer, outside the locks.
func (ep *tcpEndpoint) peerLost(src int, err error) {
	var pde *PeerDeathError
	if !errors.As(err, &pde) {
		pde = &PeerDeathError{Rank: src, Err: err}
	}
	ep.failMu.Lock()
	if ep.deadPeer[src] {
		ep.failMu.Unlock()
		return
	}
	ep.deadPeer[src] = true
	if ep.firstFail == nil {
		ep.firstFail = pde
	}
	fns := append([]func(rank int, err error){}, ep.failFns...)
	ep.failMu.Unlock()

	ep.logf("transport: rank %d lost peer %d: %v", ep.rank, src, err)
	ep.bar.depart(src, fmt.Errorf("transport: rank %d is gone: %w", src, err))
	ep.mb.depart(src)
	for _, fn := range fns {
		fn(src, pde)
	}
}

func (ep *tcpEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ep.connMu.Lock()
		ep.inConns = append(ep.inConns, conn)
		ep.connMu.Unlock()
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			ep.readLoop(conn)
		}()
	}
}

// claimInbound takes ownership of the inbound direction from src: the
// previous connection (a broken one being replaced after a redial) is
// closed and fully drained first, and any pending dead-peer verdict for
// src is disarmed. It returns the done channel the owning reader must
// close on exit.
func (ep *tcpEndpoint) claimInbound(src int, conn net.Conn) chan struct{} {
	done := make(chan struct{})
	ep.connMu.Lock()
	st := ep.inStates[src]
	var prevConn net.Conn
	var prevDone chan struct{}
	if st != nil {
		prevConn, prevDone = st.conn, st.done
	}
	ep.inStates[src] = &inConnState{conn: conn, done: done}
	if t := ep.deadTimers[src]; t != nil {
		t.Stop()
		delete(ep.deadTimers, src)
	}
	ep.connMu.Unlock()
	if prevConn != nil {
		prevConn.Close()
		<-prevDone
	}
	return done
}

// ownsInbound reports whether conn is still the registered inbound
// connection from src (false once a re-hello replaced it).
func (ep *tcpEndpoint) ownsInbound(src int, conn net.Conn) bool {
	ep.connMu.Lock()
	defer ep.connMu.Unlock()
	return ep.inStates[src] != nil && ep.inStates[src].conn == conn
}

// armDeadVerdict schedules the dead-peer verdict for src: unless a
// re-hello arrives within the reconnect budget, the peer is declared dead.
func (ep *tcpEndpoint) armDeadVerdict(src int, cause error) {
	ep.connMu.Lock()
	defer ep.connMu.Unlock()
	if ep.deadTimers[src] != nil || ep.closed.Load() {
		return
	}
	ep.deadTimers[src] = time.AfterFunc(ep.reconnect, func() {
		ep.peerLost(src, &PeerDeathError{Rank: src,
			Err: fmt.Errorf("no reconnect within %v: %w", ep.reconnect, cause)})
	})
}

// sendAck writes one cumulative acknowledgement for src's stream on the
// reverse direction of its inbound connection. Failures are ignored: a
// broken connection surfaces through its read side.
func (ep *tcpEndpoint) sendAck(src int, conn net.Conn) {
	var payload [8]byte
	binary.BigEndian.PutUint64(payload[:], uint64(ep.rxCnt[src].Load()))
	conn.SetWriteDeadline(time.Now().Add(ep.writeTimeout))
	WriteFrame(conn, Frame{Type: FrameAck, Rank: ep.rank, Payload: payload[:]})
	conn.SetWriteDeadline(time.Time{})
}

// readLoop serves one inbound connection: a hello frame identifies the
// sender, then data frames are demultiplexed into the mailbox (where the
// runtime's tag/source matching picks them up) and barrier frames into the
// barrier state. In reconnect mode it also acknowledges the stream back to
// the sender, and a dropped connection is held open for a re-hello (for up
// to the reconnect budget) instead of immediately departing the peer.
func (ep *tcpEndpoint) readLoop(conn net.Conn) {
	f, err := ReadFrame(conn)
	if err != nil || f.Type != FrameHello || f.Rank < 0 || f.Rank >= ep.size || f.Rank == ep.rank {
		// A stray or malformed connection (port scan, misconfiguration):
		// drop it without failing the communicator.
		ep.logf("transport: rank %d dropped stray connection from %v", ep.rank, conn.RemoteAddr())
		conn.Close()
		return
	}
	src := f.Rank
	done := ep.claimInbound(src, conn)
	defer close(done)
	ep.connMu.Lock()
	if !ep.helloSeen[src] {
		ep.helloSeen[src] = true
		ep.helloCnt++
	}
	ep.connMu.Unlock()
	ep.helloCond.Broadcast()
	if ep.reconnect > 0 {
		// The resume point: everything before it arrived, everything after
		// it the (re)dialing sender must (re)send.
		ep.sendAck(src, conn)
	}

	for {
		f, err := ReadFrame(conn)
		if err != nil {
			// End of stream. A peer that said bye (or a mesh without
			// reconnect) is departing — the normal staggered course of a
			// run. Otherwise the connection broke: hold the verdict for
			// the reconnect budget so a redial can resume invisibly.
			conn.Close()
			if ep.closed.Load() {
				return
			}
			if ep.reconnect > 0 && !ep.sawBye[src].Load() {
				if ep.ownsInbound(src, conn) {
					ep.logf("transport: rank %d: link from %d broke (%v), awaiting reconnect", ep.rank, src, err)
					ep.armDeadVerdict(src, err)
				}
				return
			}
			ep.peerLost(src, err)
			return
		}
		ep.lastRecv[src].Store(time.Now().UnixNano())
		switch f.Type {
		case FrameData:
			if f.Rank != src {
				conn.Close()
				ep.fail(fmt.Errorf("rank %d sent frame claiming rank %d", src, f.Rank))
				return
			}
			ep.links[src].recvFrames.Add(1)
			ep.links[src].recvBytes.Add(int64(len(f.Payload)))
			ep.mb.push(envelope{source: src, tag: f.Tag, data: f.Payload})
		case FrameBarrier:
			if len(f.Payload) != 1 {
				conn.Close()
				ep.fail(fmt.Errorf("rank %d sent malformed barrier frame", src))
				return
			}
			ep.links[src].recvFrames.Add(1)
			ep.links[src].recvBytes.Add(1)
			ep.bar.handle(src, f.Tag, f.Payload[0])
		case FrameBye:
			ep.sawBye[src].Store(true)
		case FrameHeartbeat:
			// Liveness only; lastRecv above is the whole point.
		default:
			// Redundant hello: ignore, and keep it out of the stream count.
			continue
		}
		if n := ep.rxCnt[src].Add(1); ep.reconnect > 0 && n%ackEvery == 0 {
			ep.sendAck(src, conn)
		}
	}
}

// ackLoop consumes the reverse direction of one outbound connection:
// cumulative acknowledgement frames from the accepting side, pruning the
// re-send window as they arrive. It exits when the connection dies; the
// redial path reads its resume acknowledgement synchronously and then
// starts a fresh ackLoop on the repaired connection.
func (ep *tcpEndpoint) ackLoop(p *peerLink, conn net.Conn) {
	for {
		f, err := ReadFrame(conn)
		if err != nil {
			return
		}
		if f.Type == FrameAck && len(f.Payload) == 8 {
			p.ackTo(int64(binary.BigEndian.Uint64(f.Payload)))
		}
	}
}

// writeLoop drains one peer's outbound queue onto its connection. On close
// it flushes everything already queued before shutting the connection down
// (graceful shutdown); on a write error it either repairs the link (redial
// plus re-send of the unacknowledged window, when Reconnect is on) or
// drops the queue and marks the peer departed.
func (ep *tcpEndpoint) writeLoop(dst int, p *peerLink) {
	for {
		p.mu.Lock()
		for len(p.q) == 0 && !p.stopped && p.err == nil {
			p.cond.Wait()
		}
		if p.err != nil || (p.stopped && len(p.q) == 0) {
			conn := p.conn
			p.mu.Unlock()
			conn.Close()
			return
		}
		batch := p.q
		p.q = nil
		conn := p.conn
		p.mu.Unlock()
		for i := 0; i < len(batch); i++ {
			b := batch[i]
			conn.SetWriteDeadline(time.Now().Add(ep.writeTimeout))
			if _, err := conn.Write(b.data); err != nil {
				if ep.reconnect > 0 && !ep.closed.Load() && !p.isStopped() {
					if c, ok := ep.redial(dst, p, conn); ok {
						conn = c
						i-- // the failed frame rides the repaired link
						continue
					}
					err = fmt.Errorf("reconnect budget %v exhausted: %w", ep.reconnect, err)
				}
				ep.dropLink(dst, p, err)
				return
			}
			if !p.recordWrite(b, ep.reconnect > 0, ep.window) {
				ep.dropLink(dst, p, fmt.Errorf("unacked window overflow (%d frames, no acks)", ep.window))
				return
			}
		}
	}
}

// dropLink abandons the outbound link: the queue is dropped, the
// connection closed, and the peer departed (unless the endpoint itself is
// closing).
func (ep *tcpEndpoint) dropLink(dst int, p *peerLink, err error) {
	p.mu.Lock()
	p.err = err
	p.q = nil
	conn := p.conn
	p.mu.Unlock()
	conn.Close()
	if !ep.closed.Load() {
		ep.peerLost(dst, fmt.Errorf("write: %w", err))
	}
}

// redial repairs a broken outbound link: dial with capped exponential
// backoff plus jitter until the reconnect budget runs out, re-hello, read
// the receiver's resume acknowledgement, prune the window to it and
// re-send the remainder. On success the repaired connection is installed
// on the link (with a fresh ackLoop) and returned.
func (ep *tcpEndpoint) redial(dst int, p *peerLink, old net.Conn) (net.Conn, bool) {
	old.Close()
	deadline := time.Now().Add(ep.reconnect)
	backoff := ep.reconBackoff
	const maxBackoff = time.Second
	rng := rand.New(rand.NewSource(int64(ep.rank)<<20 ^ int64(dst) ^ time.Now().UnixNano()))
	for attempt := 1; ; attempt++ {
		if ep.closed.Load() || p.isStopped() || ep.peerDead(dst) {
			return nil, false
		}
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return nil, false
		}
		dialT := 2 * time.Second
		if remaining < dialT {
			dialT = remaining
		}
		conn, err := net.DialTimeout("tcp", ep.peerAddrs[dst], dialT)
		if err == nil {
			err = ep.resume(dst, p, conn)
			if err == nil {
				ep.logf("transport: rank %d repaired link to %d after %d attempt(s)", ep.rank, dst, attempt)
				p.mu.Lock()
				p.conn = conn
				p.mu.Unlock()
				ep.wg.Add(1)
				go func() {
					defer ep.wg.Done()
					ep.ackLoop(p, conn)
				}()
				return conn, true
			}
			conn.Close()
		}
		// Capped exponential backoff with jitter so a whole fleet
		// redialing one recovered rank does not stampede in lockstep.
		sleep := backoff + time.Duration(rng.Int63n(int64(backoff)+1))
		if remaining := time.Until(deadline); sleep > remaining {
			sleep = remaining
		}
		time.Sleep(sleep)
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// resume performs the re-hello handshake on a fresh connection: hello, then
// the receiver's cumulative acknowledgement tells this side exactly which
// suffix of the unacked window it never received; that suffix is re-sent
// before regular queue traffic continues.
func (ep *tcpEndpoint) resume(dst int, p *peerLink, conn net.Conn) error {
	conn.SetWriteDeadline(time.Now().Add(ep.writeTimeout))
	if err := WriteFrame(conn, Frame{Type: FrameHello, Rank: ep.rank}); err != nil {
		return fmt.Errorf("re-hello: %w", err)
	}
	conn.SetWriteDeadline(time.Time{})
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	f, err := ReadFrame(conn)
	conn.SetReadDeadline(time.Time{})
	if err != nil {
		return fmt.Errorf("resume ack: %w", err)
	}
	if f.Type != FrameAck || len(f.Payload) != 8 {
		return fmt.Errorf("resume handshake got frame type %d, want ack", f.Type)
	}
	p.ackTo(int64(binary.BigEndian.Uint64(f.Payload)))
	for _, b := range p.unacked() {
		conn.SetWriteDeadline(time.Now().Add(ep.writeTimeout))
		if _, err := conn.Write(b.data); err != nil {
			return fmt.Errorf("window re-send: %w", err)
		}
	}
	conn.SetWriteDeadline(time.Time{})
	return nil
}

// heartbeatLoop keeps idle links warm and renders the dead-peer verdict on
// silence: a peer from which nothing arrived for HeartbeatTimeout — not
// even the heartbeats its own monitor should be sending — is departed with
// a PeerDeathError.
func (ep *tcpEndpoint) heartbeatLoop() {
	defer ep.wg.Done()
	tick := time.NewTicker(ep.hbInterval)
	defer tick.Stop()
	for {
		select {
		case <-ep.stopHB:
			return
		case <-tick.C:
		}
		now := time.Now()
		for j := 0; j < ep.size; j++ {
			if j == ep.rank || ep.peerDead(j) || ep.sawBye[j].Load() {
				continue
			}
			if p := ep.peers[j]; p != nil && now.Sub(p.lastWrite()) >= ep.hbInterval {
				hb := EncodeFrame(Frame{Type: FrameHeartbeat, Rank: ep.rank})
				p.enqueue(hb, nil)
			}
			if ep.hbTimeout > 0 {
				last := time.Unix(0, ep.lastRecv[j].Load())
				if now.Sub(last) > ep.hbTimeout {
					ep.peerLost(j, &PeerDeathError{Rank: j,
						Err: fmt.Errorf("silent for %v (heartbeat timeout %v)", now.Sub(last).Round(time.Millisecond), ep.hbTimeout)})
				}
			}
		}
	}
}

// Barrier blocks until every rank has entered it, using a centralized
// protocol over reserved barrier frames: every rank reports to rank 0,
// which releases everyone once all have arrived. Generations keep distinct
// barrier episodes apart; the collective-call contract (every rank calls
// Barrier the same number of times, in the same order relative to its own
// sends) makes the generation counters line up across ranks.
func (ep *tcpEndpoint) Barrier() error {
	start := time.Now()
	err := ep.barrier()
	ep.barT.observe(start)
	return err
}

func (ep *tcpEndpoint) barrier() error {
	b := ep.bar
	b.mu.Lock()
	if b.err != nil {
		defer b.mu.Unlock()
		return b.err
	}
	gen := b.gen
	b.gen++
	b.mu.Unlock()
	if ep.size == 1 {
		return nil
	}

	if ep.rank == 0 {
		b.mu.Lock()
		for len(b.entered[gen]) < ep.size-1 && b.err == nil && b.missingLocked(gen) < 0 {
			b.cond.Wait()
		}
		// A completed generation wins over a concurrent failure or
		// departure (a peer may exit cleanly right after its own Barrier
		// returned, its enter frame for this generation already received).
		var err error
		if len(b.entered[gen]) < ep.size-1 {
			if b.err != nil {
				err = b.err
			} else if j := b.missingLocked(gen); j >= 0 {
				err = fmt.Errorf("transport: barrier cannot complete: %w", b.departErr[j])
			}
		}
		delete(b.entered, gen)
		b.mu.Unlock()
		if err != nil {
			// The generation can never complete. Tell the ranks already
			// waiting in it, or they hold out forever for a release that
			// will not come: a non-root rank cannot distinguish a slow
			// collective from a doomed one on its own.
			abort := EncodeFrame(Frame{Type: FrameBarrier, Rank: ep.rank, Tag: gen, Payload: []byte{BarrierAbort}})
			for j := 1; j < ep.size; j++ {
				ep.links[j].sentFrames.Add(1)
				ep.links[j].sentBytes.Add(1)
				ep.peers[j].enqueue(abort, nil)
			}
			return err
		}
		release := EncodeFrame(Frame{Type: FrameBarrier, Rank: ep.rank, Tag: gen, Payload: []byte{BarrierRelease}})
		for j := 1; j < ep.size; j++ {
			ep.links[j].sentFrames.Add(1)
			ep.links[j].sentBytes.Add(1)
			ep.peers[j].enqueue(release, nil)
		}
		return nil
	}

	ep.links[0].sentFrames.Add(1)
	ep.links[0].sentBytes.Add(1)
	ep.peers[0].enqueue(EncodeFrame(Frame{Type: FrameBarrier, Rank: ep.rank, Tag: gen, Payload: []byte{BarrierEnter}}), nil)
	b.mu.Lock()
	for !b.released[gen] && !b.aborted[gen] && b.err == nil && !b.departed[0] {
		b.cond.Wait()
	}
	// A release already received wins over a concurrent failure: rank 0
	// may exit immediately after releasing the last generation.
	var err error
	if !b.released[gen] {
		switch {
		case b.err != nil:
			err = b.err
		case b.departed[0]:
			err = fmt.Errorf("transport: barrier cannot complete: %w", b.departErr[0])
		case b.departedLocked() >= 0:
			err = fmt.Errorf("transport: barrier cannot complete: %w", b.departErr[b.departedLocked()])
		default:
			err = fmt.Errorf("transport: barrier aborted by rank 0: a member departed before entering")
		}
	}
	delete(b.released, gen)
	delete(b.aborted, gen)
	b.mu.Unlock()
	return err
}

// Links reports per-peer traffic and outbound queue depths.
func (ep *tcpEndpoint) Links() []LinkStats {
	out := make([]LinkStats, ep.size)
	for j := range out {
		depth := 0
		if p := ep.peers[j]; p != nil {
			depth = p.depth()
		}
		out[j] = ep.links[j].snapshot(j, depth)
	}
	return out
}

// BarrierStats reports how many barriers completed and the total wait.
func (ep *tcpEndpoint) BarrierStats() BarrierStats { return ep.barT.stats() }

// SeverLink cuts both directions of the connection pair to one peer, as a
// network fault would: nothing is flushed or announced, queues and windows
// stay intact, and the reconnect machinery must repair the damage. Part of
// the LinkSeverer fault-injection surface; meaningless (an instant
// departure) unless Reconnect is enabled mesh-wide.
func (ep *tcpEndpoint) SeverLink(peer int) {
	if peer < 0 || peer >= ep.size || peer == ep.rank {
		return
	}
	ep.logf("transport: rank %d severing link to %d", ep.rank, peer)
	if p := ep.peers[peer]; p != nil {
		p.mu.Lock()
		conn := p.conn
		p.mu.Unlock()
		conn.Close()
	}
	ep.connMu.Lock()
	var in net.Conn
	if st := ep.inStates[peer]; st != nil {
		in = st.conn
	}
	ep.connMu.Unlock()
	if in != nil {
		in.Close()
	}
}

// Crash simulates the abrupt death of this rank for fault-injection tests:
// every connection and the listener are torn down with no bye and no
// flush, exactly as a killed process would leave them. Peers discover the
// death through their own failure detection (reconnect budget, heartbeat
// timeout, or immediate departure without reconnect). Part of the Crasher
// surface.
func (ep *tcpEndpoint) Crash() {
	ep.closed.Store(true)
	ep.hbOnce.Do(func() { close(ep.stopHB) })
	ep.ln.Close()
	for _, p := range ep.peers {
		if p != nil {
			p.abort()
		}
	}
	ep.connMu.Lock()
	conns := append([]net.Conn(nil), ep.inConns...)
	for src, t := range ep.deadTimers {
		t.Stop()
		delete(ep.deadTimers, src)
	}
	ep.connMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	ep.helloCond.Broadcast()
	ep.bar.fail(errClosed)
	ep.mb.fail()
}

// Close shuts the endpoint down gracefully: a bye frame announces the
// departure (in reconnect mode, so peers never wait for a reconnect that
// cannot come), queued outbound frames are flushed, connections and the
// listener are closed, and any still-posted receive is canceled so no
// caller blocks on a closed communicator.
func (ep *tcpEndpoint) Close() error {
	ep.closeOnce.Do(func() {
		if ep.reconnect > 0 && !ep.closed.Load() {
			bye := EncodeFrame(Frame{Type: FrameBye, Rank: ep.rank})
			for j, p := range ep.peers {
				if p != nil && !ep.peerDead(j) {
					p.enqueue(bye, nil)
				}
			}
		}
		ep.closed.Store(true)
		ep.hbOnce.Do(func() { close(ep.stopHB) })
		ep.ln.Close()
		for _, p := range ep.peers {
			if p != nil {
				p.stop()
			}
		}
		// Writers flush their queues and close their own connections; the
		// inbound side is cut here, which ends the reader goroutines.
		ep.connMu.Lock()
		conns := append([]net.Conn(nil), ep.inConns...)
		for src, t := range ep.deadTimers {
			t.Stop()
			delete(ep.deadTimers, src)
		}
		ep.connMu.Unlock()
		for _, c := range conns {
			c.Close()
		}
		ep.helloCond.Broadcast()
		ep.wg.Wait()
		ep.bar.fail(errClosed)
		ep.mb.fail()
	})
	return nil
}

// peerLink is the outbound half of one rank pair: an unbounded frame queue
// drained by a dedicated writer goroutine, so Isend never blocks on the
// network (the same eager decoupling the in-process substrate provides).
// In reconnect mode it additionally retains every written-but-unacked
// frame in a bounded window, the raw material of the post-redial re-send.
type peerLink struct {
	mu      sync.Mutex
	cond    *sync.Cond
	conn    net.Conn
	q       []outFrame
	stopped bool
	err     error

	sent    []outFrame // written but not yet acknowledged (reconnect mode)
	sentCnt int64      // frames fully written on the link since rendezvous
	ackCnt  int64      // highest cumulative acknowledgement received

	lastEnq atomic.Int64 // unixnano of the last enqueue (heartbeat idle check)
}

// outFrame is one queued wire frame; owner, when non-nil, is the pooled
// buffer backing data, returned to framePool after a successful write (or,
// in reconnect mode, once the receiver acknowledged the frame). Barrier
// frames enqueue the same slice to several peers and so carry no owner.
type outFrame struct {
	data  []byte
	owner *[]byte
}

func newPeerLink(conn net.Conn) *peerLink {
	p := &peerLink{conn: conn}
	p.cond = sync.NewCond(&p.mu)
	p.lastEnq.Store(time.Now().UnixNano())
	return p
}

func (p *peerLink) enqueue(frame []byte, owner *[]byte) {
	p.lastEnq.Store(time.Now().UnixNano())
	p.mu.Lock()
	if p.stopped || p.err != nil {
		p.mu.Unlock()
		return // dropped: the communicator is shutting down or broken
	}
	p.q = append(p.q, outFrame{frame, owner})
	p.mu.Unlock()
	p.cond.Signal()
}

// depth returns the number of frames queued behind the writer.
func (p *peerLink) depth() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.q)
}

func (p *peerLink) lastWrite() time.Time {
	return time.Unix(0, p.lastEnq.Load())
}

func (p *peerLink) stop() {
	p.mu.Lock()
	p.stopped = true
	p.mu.Unlock()
	p.cond.Signal()
}

// abort kills the link with no flush: queued frames drop, the connection
// closes mid-stream — the Crash primitive's per-link half.
func (p *peerLink) abort() {
	p.mu.Lock()
	p.err = errClosed
	p.q = nil
	conn := p.conn
	p.mu.Unlock()
	conn.Close()
	p.cond.Signal()
}

func (p *peerLink) isStopped() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stopped
}

// recordWrite accounts one successfully written frame. Without reconnect
// the pooled buffer goes straight back; with it the frame joins the
// unacked window, whose overflow (false) fails the link.
func (p *peerLink) recordWrite(b outFrame, reconnect bool, window int) bool {
	p.mu.Lock()
	p.sentCnt++
	if !reconnect {
		p.mu.Unlock()
		if b.owner != nil {
			*b.owner = (*b.owner)[:0]
			framePool.Put(b.owner)
		}
		return true
	}
	p.sent = append(p.sent, b)
	over := len(p.sent) > window
	p.mu.Unlock()
	return !over
}

// ackTo prunes the unacked window up to the cumulative count n, recycling
// the pooled buffers of the acknowledged frames.
func (p *peerLink) ackTo(n int64) {
	p.mu.Lock()
	drop := n - p.ackCnt
	if drop <= 0 {
		p.mu.Unlock()
		return
	}
	if drop > int64(len(p.sent)) {
		drop = int64(len(p.sent))
	}
	acked := p.sent[:drop]
	p.sent = append([]outFrame(nil), p.sent[drop:]...)
	p.ackCnt = n
	p.mu.Unlock()
	for _, b := range acked {
		if b.owner != nil {
			*b.owner = (*b.owner)[:0]
			framePool.Put(b.owner)
		}
	}
}

// unacked snapshots the window of written-but-unacknowledged frames, the
// exact suffix a repaired connection must carry again.
func (p *peerLink) unacked() []outFrame {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]outFrame(nil), p.sent...)
}

// barrierState tracks barrier generations on both sides of the centralized
// protocol: rank 0 records which ranks entered each generation, other ranks
// wait for their release frame. Departed peers fail only the barriers they
// never participated in — a generation a peer entered before leaving still
// completes, so ranks may exit in staggered order.
type barrierState struct {
	mu        sync.Mutex
	cond      *sync.Cond
	gen       int
	entered   map[int]map[int]bool // generation → set of ranks that entered (rank 0 only)
	released  map[int]bool
	aborted   map[int]bool // generations rank 0 declared doomed (BarrierAbort)
	departed  []bool
	departErr []error
	err       error // communicator-wide failure (protocol violation or Close)
}

func newBarrierState(size int) *barrierState {
	b := &barrierState{
		entered:   map[int]map[int]bool{},
		released:  map[int]bool{},
		aborted:   map[int]bool{},
		departed:  make([]bool, size),
		departErr: make([]error, size),
	}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrierState) handle(src, gen int, phase byte) {
	b.mu.Lock()
	switch phase {
	case BarrierEnter:
		set := b.entered[gen]
		if set == nil {
			set = map[int]bool{}
			b.entered[gen] = set
		}
		set[src] = true
	case BarrierRelease:
		b.released[gen] = true
	case BarrierAbort:
		b.aborted[gen] = true
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *barrierState) fail(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *barrierState) depart(src int, err error) {
	b.mu.Lock()
	if src >= 0 && src < len(b.departed) {
		b.departed[src] = true
		if b.departErr[src] == nil {
			b.departErr[src] = err
		}
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// missingLocked returns a rank that departed without entering generation
// gen (so the generation can never complete), or -1. Callers hold b.mu.
func (b *barrierState) missingLocked(gen int) int {
	for j := 1; j < len(b.departed); j++ {
		if b.departed[j] && !b.entered[gen][j] {
			return j
		}
	}
	return -1
}

// departedLocked returns any departed member, or -1. Callers hold b.mu.
func (b *barrierState) departedLocked() int {
	for j, d := range b.departed {
		if d {
			return j
		}
	}
	return -1
}
