package transport

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestMuxOpenOnSubsetSession: a session over ranks {0,2,3} of a 4-rank
// world runs with contiguous virtual ranks 0..2 — sends, wildcard receives
// and the per-job barrier all speak virtual ids, and the non-member rank
// never sees a byte of it.
func TestMuxOpenOnSubsetSession(t *testing.T) {
	l := NewLocal(4)
	members := []int{0, 2, 3}
	muxes := make(map[int]*Mux)
	jobs := make(map[int]*JobEndpoint)
	for _, r := range members {
		muxes[r] = NewMux(l.Endpoint(r))
		jep, err := muxes[r].OpenOn(9, members)
		if err != nil {
			t.Fatalf("rank %d OpenOn: %v", r, err)
		}
		jobs[r] = jep
	}
	defer func() {
		for _, r := range members {
			jobs[r].Close()
			muxes[r].Close()
		}
	}()

	for v, r := range members {
		if got := jobs[r].Rank(); got != v {
			t.Fatalf("real rank %d got virtual rank %d, want %d", r, got, v)
		}
		if got := jobs[r].Size(); got != len(members) {
			t.Fatalf("session size %d, want %d", got, len(members))
		}
		m := jobs[r].Members()
		for i := range members {
			if m[i] != members[i] {
				t.Fatalf("rank %d Members() = %v, want %v", r, m, members)
			}
		}
	}

	// A ring over virtual ranks: v sends to (v+1)%3, receives from (v+2)%3.
	var wg sync.WaitGroup
	for v, r := range members {
		wg.Add(1)
		go func(v, r int) {
			defer wg.Done()
			jep := jobs[r]
			jep.Isend([]byte{byte(10 + v)}, (v+1)%3, 5)
			req := jep.Irecv(Any, 5)
			req.Wait()
			wantSrc := (v + 2) % 3
			if req.Canceled() || req.Source() != wantSrc || req.Data()[0] != byte(10+wantSrc) {
				t.Errorf("virtual rank %d: got %d from %d, want %d from %d",
					v, req.Data()[0], req.Source(), 10+wantSrc, wantSrc)
			}
			if err := jep.Barrier(); err != nil {
				t.Errorf("virtual rank %d barrier: %v", v, err)
			}
		}(v, r)
	}
	wg.Wait()
}

func TestMuxOpenOnValidation(t *testing.T) {
	l := NewLocal(3)
	m := NewMux(l.Endpoint(1))
	defer m.Close()
	cases := []struct {
		name  string
		ranks []int
	}{
		{"empty", nil},
		{"duplicate", []int{0, 1, 1}},
		{"out of range", []int{0, 1, 7}},
		{"negative", []int{-1, 1}},
		{"self not a member", []int{0, 2}},
	}
	for _, tc := range cases {
		if _, err := m.OpenOn(3, tc.ranks); err == nil {
			t.Errorf("OpenOn(%s: %v) accepted", tc.name, tc.ranks)
		}
	}
	// A valid subset still opens after the rejections.
	jep, err := m.OpenOn(3, []int{1, 2})
	if err != nil {
		t.Fatalf("valid OpenOn rejected: %v", err)
	}
	jep.Close()
}

// TestMuxFailureFanout: when the transport declares a peer dead, every open
// job session observes the death — posted receives cancel, barriers error,
// PeerFailure reports the cause in virtual coordinates — and the mux-level
// observer fires for fleet bookkeeping.
func TestMuxFailureFanout(t *testing.T) {
	// Three ranks, one death: the survivors' link keeps the fleet (and the
	// mux pump) alive, as in a real degraded service fleet.
	eps := newTCPMesh(t, 3)
	m0 := NewMux(eps[0])
	defer m0.Close()
	jep, err := m0.Open(5)
	if err != nil {
		t.Fatal(err)
	}
	defer jep.Close()

	fleetDeaths := make(chan int, 2)
	m0.OnPeerFailure(func(rank int, err error) { fleetDeaths <- rank })
	jobDeaths := make(chan error, 2)
	jep.OnPeerFailure(func(rank int, err error) {
		if rank != 1 {
			t.Errorf("job observer got virtual rank %d, want 1", rank)
		}
		jobDeaths <- err
	})
	pending := jep.Irecv(1, 3)

	eps[1].(Crasher).Crash()

	select {
	case err := <-jobDeaths:
		var pde *PeerDeathError
		if !errors.As(err, &pde) {
			t.Fatalf("job death %v does not carry PeerDeathError", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("job session never observed the peer death")
	}
	select {
	case rank := <-fleetDeaths:
		if rank != 1 {
			t.Fatalf("fleet observer reported rank %d, want 1", rank)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("mux-level observer never fired")
	}
	pending.Wait()
	if !pending.Canceled() {
		t.Fatal("receive from the dead member did not cancel")
	}
	if jep.PeerFailure() == nil {
		t.Fatal("JobEndpoint.PeerFailure still nil after the death")
	}
	if err := jep.Barrier(); err == nil {
		t.Fatal("barrier with a dead member reported success")
	}
	if dead := m0.DeadPeers(); len(dead) != 1 || dead[0] != 1 {
		t.Fatalf("DeadPeers() = %v, want [1]", dead)
	}

	// Sessions opened on the already-degraded fleet inherit the verdict
	// instead of waiting for a death that already happened.
	late, err := m0.Open(6)
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	deadline := time.Now().Add(5 * time.Second)
	for late.PeerFailure() == nil {
		if time.Now().After(deadline) {
			t.Fatal("session opened on a degraded fleet never saw the standing death")
		}
		time.Sleep(time.Millisecond)
	}
}
