package transport

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// newTCPMeshCfg is newTCPMesh with resilience knobs applied to every rank.
func newTCPMeshCfg(t *testing.T, n int, mod func(*TCPConfig)) []Endpoint {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	eps := make([]Endpoint, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := TCPConfig{
				Rank:              i,
				Peers:             peers,
				Listener:          lns[i],
				RendezvousTimeout: 10 * time.Second,
			}
			mod(&cfg)
			eps[i], errs[i] = DialTCP(cfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	return eps
}

// awaitFailure registers a FailureObserver callback on ep and returns a
// channel that delivers the first reported peer death.
func awaitFailure(t *testing.T, ep Endpoint) <-chan error {
	t.Helper()
	fo, ok := ep.(FailureObserver)
	if !ok {
		t.Fatalf("%T does not implement FailureObserver", ep)
	}
	ch := make(chan error, 4)
	fo.OnPeerFailure(func(rank int, err error) { ch <- err })
	return ch
}

// TestTCPReconnectResendsAfterSever severs both directions of a live link
// mid-conversation and asserts the reconnect layer repairs it invisibly:
// every message sent after the cut still arrives exactly once, in order,
// in both directions, with no failure verdict rendered.
func TestTCPReconnectResendsAfterSever(t *testing.T) {
	eps := newTCPMeshCfg(t, 2, func(cfg *TCPConfig) {
		cfg.Reconnect = 5 * time.Second
		cfg.ReconnectBackoff = 2 * time.Millisecond
	})

	// Prime the link so both directions carry established connections.
	eps[0].Isend([]byte("prime"), 1, 0)
	r := eps[1].Irecv(0, 0)
	r.Wait()
	if string(r.Data()) != "prime" {
		t.Fatalf("prime: %q", r.Data())
	}

	eps[0].(LinkSeverer).SeverLink(1)

	const msgs = 50
	for i := 0; i < msgs; i++ {
		eps[0].Isend(chaosPayload(i), 1, 100+i)
		eps[1].Isend(chaosPayload(2000+i), 0, 100+i)
	}
	for i := 0; i < msgs; i++ {
		r := eps[1].Irecv(0, 100+i)
		r.Wait()
		if r.Canceled() || !bytes.Equal(r.Data(), chaosPayload(i)) {
			t.Fatalf("0->1 message %d lost across sever (canceled=%v)", i, r.Canceled())
		}
		r = eps[0].Irecv(1, 100+i)
		r.Wait()
		if r.Canceled() || !bytes.Equal(r.Data(), chaosPayload(2000+i)) {
			t.Fatalf("1->0 message %d lost across sever (canceled=%v)", i, r.Canceled())
		}
	}
	for rank, ep := range eps {
		if err := ep.(FailureObserver).PeerFailure(); err != nil {
			t.Fatalf("rank %d rendered a failure verdict across a survivable sever: %v", rank, err)
		}
	}
	barErr := make(chan error, 1)
	go func() { barErr <- eps[1].Barrier() }()
	if err := eps[0].Barrier(); err != nil {
		t.Fatalf("barrier on repaired mesh: %v", err)
	}
	if err := <-barErr; err != nil {
		t.Fatalf("rank 1 barrier on repaired mesh: %v", err)
	}
}

// TestTCPByeCleanDeparture: a graceful Close announces itself with a bye
// frame, so the survivor departs the peer immediately instead of holding
// the dead-peer verdict open for the whole reconnect budget.
func TestTCPByeCleanDeparture(t *testing.T) {
	eps := newTCPMeshCfg(t, 2, func(cfg *TCPConfig) {
		cfg.Reconnect = 30 * time.Second // a budget the test must never wait out
	})
	failed := awaitFailure(t, eps[0])

	start := time.Now()
	eps[1].Close()
	select {
	case err := <-failed:
		var pde *PeerDeathError
		if !errors.As(err, &pde) || pde.Rank != 1 {
			t.Fatalf("departure error %v, want PeerDeathError for rank 1", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("bye did not shortcut the reconnect budget: no departure after 5s")
	}
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("departure verdict took %v, bye should make it immediate", waited)
	}
	// Receives naming the departed peer cancel rather than hang.
	r := eps[0].Irecv(1, 9)
	r.Wait()
	if !r.Canceled() {
		t.Fatal("recv from departed peer did not cancel")
	}
}

// TestTCPHeartbeatKeepsIdleLinkAlive then renders the dead verdict: an idle
// but healthy peer must never be declared dead (its heartbeats prove
// liveness), while a crashed one must be, within the reconnect budget.
func TestTCPHeartbeatKeepsIdleLinkAlive(t *testing.T) {
	eps := newTCPMeshCfg(t, 2, func(cfg *TCPConfig) {
		cfg.Reconnect = 250 * time.Millisecond
		cfg.ReconnectBackoff = 2 * time.Millisecond
		cfg.HeartbeatInterval = 20 * time.Millisecond
		cfg.HeartbeatTimeout = 120 * time.Millisecond
	})
	failed := awaitFailure(t, eps[0])

	// Phase 1: total silence above the transport, several multiples of the
	// heartbeat timeout long. Heartbeats alone must keep the link alive.
	time.Sleep(400 * time.Millisecond)
	if err := eps[0].(FailureObserver).PeerFailure(); err != nil {
		t.Fatalf("idle healthy peer declared dead: %v", err)
	}

	// Phase 2: the peer crashes without a goodbye; the survivor must notice.
	eps[1].(Crasher).Crash()
	select {
	case err := <-failed:
		var pde *PeerDeathError
		if !errors.As(err, &pde) || pde.Rank != 1 {
			t.Fatalf("crash verdict %v, want PeerDeathError for rank 1", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("crashed peer never declared dead")
	}
}

// TestTCPPeerLinkWindowAccounting unit-tests the unacked re-send window:
// bounded growth, cumulative pruning, and the exact unacked suffix that a
// resume must replay.
func TestTCPPeerLinkWindowAccounting(t *testing.T) {
	p := newPeerLink(nil)
	frame := func(i int) outFrame {
		return outFrame{data: EncodeFrame(Frame{Type: FrameData, Rank: 0, Tag: i})}
	}
	const window = 4
	for i := 0; i < window; i++ {
		if !p.recordWrite(frame(i), true, window) {
			t.Fatalf("write %d rejected inside the window", i)
		}
	}
	if p.recordWrite(frame(window), true, window) {
		t.Fatal("write beyond the window accepted with no acks")
	}
	// Cumulative ack for the first 3 frames frees room again.
	p.ackTo(3)
	if !p.recordWrite(frame(window+1), true, window) {
		t.Fatal("write rejected after ack pruned the window")
	}
	// An overflowing recordWrite still records its frame before reporting
	// the overflow, so the window now holds tags 3..5 — exactly the suffix
	// a resume must replay.
	un := p.unacked()
	want := 3
	if len(un) != want {
		t.Fatalf("unacked() returned %d frames, want %d", len(un), want)
	}
	for _, b := range un {
		f, _, err := DecodeFrame(b.data)
		if err != nil {
			t.Fatalf("unacked frame corrupt: %v", err)
		}
		if f.Tag < 3 {
			t.Fatalf("unacked window still holds acked frame tag %d", f.Tag)
		}
	}
	// A duplicate (stale) ack must be a no-op, not a panic or regression.
	p.ackTo(1)
	if got := len(p.unacked()); got != want {
		t.Fatalf("stale ack changed the window: %d -> %d", want, got)
	}
}

// TestTCPZeroConfigHasNoResilienceOverhead: with Reconnect off the endpoint
// keeps the pre-resilience wire behavior — a crash is an immediate
// departure, with no verdict-holding window.
func TestTCPZeroConfigHasNoResilienceOverhead(t *testing.T) {
	eps := newTCPMesh(t, 2)
	failed := awaitFailure(t, eps[0])
	eps[1].(Crasher).Crash()
	select {
	case err := <-failed:
		var pde *PeerDeathError
		if !errors.As(err, &pde) || pde.Rank != 1 {
			t.Fatalf("verdict %v, want PeerDeathError for rank 1", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no immediate departure without reconnect mode")
	}
}
