package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire format. Every unit on a TCP connection is one frame:
//
//	[u32 payload length][u8 type][u32 source rank][u32 tag][payload...]
//
// All integers are big-endian. The length prefix covers the payload only;
// the fixed header is HeaderLen bytes. Three frame types exist:
//
//   - FrameHello is sent once, immediately after dialing, and identifies
//     the sender's rank to the accepting side (tag and payload unused);
//   - FrameData carries one message: rank is the sender, tag is the MPI
//     tag, payload is the marshaled packet;
//   - FrameBarrier carries barrier protocol traffic: tag is the barrier
//     generation, payload is one byte (BarrierEnter, BarrierRelease or
//     BarrierAbort);
//   - FrameAck carries the receiver's cumulative frame count for a link
//     (payload: u64 big-endian), written on the reverse direction of the
//     inbound connection so a reconnecting dialer knows where to resume;
//   - FrameBye announces a clean shutdown: the connection's end-of-stream
//     that follows is a departure, never a crash to reconnect from;
//   - FrameHeartbeat keeps an idle link's liveness visible (tag and
//     payload unused).
const (
	FrameHello     byte = 1
	FrameData      byte = 2
	FrameBarrier   byte = 3
	FrameAck       byte = 4
	FrameBye       byte = 5
	FrameHeartbeat byte = 6
)

// Barrier phases carried in a FrameBarrier payload. BarrierAbort is rank
// 0's verdict that a generation can never complete (a member departed
// without entering): without it, every other rank would wait forever for a
// release that cannot come, since non-root ranks have no way to tell a
// slow collective from a doomed one.
const (
	BarrierEnter   byte = 0
	BarrierRelease byte = 1
	BarrierAbort   byte = 2
)

// HeaderLen is the fixed frame header size in bytes.
const HeaderLen = 4 + 1 + 4 + 4

// MaxTag is the largest representable tag. It fits an int32, so tags
// survive the wire on every platform Go supports.
const MaxTag = 1<<31 - 1

// MaxPayload bounds a frame payload, defending the decoder against
// hostile or corrupt length prefixes.
const MaxPayload = 1 << 30

// ErrShortFrame reports that a buffer ends before the frame it starts.
var ErrShortFrame = errors.New("transport: short frame")

// Frame is one decoded wire unit.
type Frame struct {
	Type    byte
	Rank    int
	Tag     int
	Payload []byte
}

func validFrameType(t byte) bool {
	return t >= FrameHello && t <= FrameHeartbeat
}

// AppendFrame appends the encoding of f to dst and returns the extended
// slice. It panics on out-of-range rank/tag or oversized payloads — those
// are programming errors on the sending side, mirroring mpi.Isend.
func AppendFrame(dst []byte, f Frame) []byte {
	if !validFrameType(f.Type) {
		panic(fmt.Sprintf("transport: encode frame type %d", f.Type))
	}
	if f.Rank < 0 || f.Rank > MaxTag {
		panic(fmt.Sprintf("transport: encode frame rank %d", f.Rank))
	}
	if f.Tag < 0 || f.Tag > MaxTag {
		panic(fmt.Sprintf("transport: encode frame tag %d", f.Tag))
	}
	if len(f.Payload) > MaxPayload {
		panic(fmt.Sprintf("transport: encode frame payload %d bytes", len(f.Payload)))
	}
	var hdr [HeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(f.Payload)))
	hdr[4] = f.Type
	binary.BigEndian.PutUint32(hdr[5:], uint32(f.Rank))
	binary.BigEndian.PutUint32(hdr[9:], uint32(f.Tag))
	dst = append(dst, hdr[:]...)
	return append(dst, f.Payload...)
}

// EncodeFrame returns the wire encoding of f in a fresh buffer (the
// payload is copied, never aliased).
func EncodeFrame(f Frame) []byte {
	return AppendFrame(make([]byte, 0, HeaderLen+len(f.Payload)), f)
}

// DecodeFrame decodes the frame at the head of b, returning the frame and
// the number of bytes consumed. The returned payload aliases b. It never
// panics: malformed input yields an error (ErrShortFrame when b simply
// ends early, so stream decoders can wait for more bytes).
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < HeaderLen {
		return Frame{}, 0, ErrShortFrame
	}
	n := binary.BigEndian.Uint32(b[0:])
	typ := b[4]
	rank := binary.BigEndian.Uint32(b[5:])
	tag := binary.BigEndian.Uint32(b[9:])
	if n > MaxPayload {
		return Frame{}, 0, fmt.Errorf("transport: frame payload %d exceeds limit %d", n, MaxPayload)
	}
	if !validFrameType(typ) {
		return Frame{}, 0, fmt.Errorf("transport: unknown frame type %d", typ)
	}
	if rank > MaxTag {
		return Frame{}, 0, fmt.Errorf("transport: frame rank %d out of range", rank)
	}
	if tag > MaxTag {
		return Frame{}, 0, fmt.Errorf("transport: frame tag %d out of range", tag)
	}
	total := HeaderLen + int(n)
	if len(b) < total {
		return Frame{}, 0, ErrShortFrame
	}
	return Frame{Type: typ, Rank: int(rank), Tag: int(tag), Payload: b[HeaderLen:total]}, total, nil
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	_, err := w.Write(EncodeFrame(f))
	return err
}

// readChunk bounds how much payload memory ReadFrame commits to before the
// corresponding bytes have actually arrived: a hostile or corrupt length
// prefix can claim up to MaxPayload (1 GiB), and speculatively allocating
// that from 13 header bytes would let a garbage stream exhaust memory. The
// buffer instead grows chunk by chunk as data is read, so an attacker must
// send the bytes to make the receiver hold them.
const readChunk = 1 << 20

// ReadFrame reads one frame from r. The payload is freshly allocated,
// incrementally (at most readChunk bytes ahead of the data actually
// received), so a lying length prefix cannot force a huge allocation. A
// clean EOF before the first header byte is reported as io.EOF; a stream
// that ends mid-frame is an error wrapping io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	// Validate the full header before committing any payload memory: most
	// garbage streams die here, on 13 bytes.
	if _, _, err := DecodeFrame(hdr[:]); err != nil && !errors.Is(err, ErrShortFrame) {
		return Frame{}, err
	}
	n := int(binary.BigEndian.Uint32(hdr[0:]))
	payload := make([]byte, 0, min(n, readChunk))
	for len(payload) < n {
		step := min(n-len(payload), readChunk)
		off := len(payload)
		payload = append(payload, make([]byte, step)...)
		if _, err := io.ReadFull(r, payload[off:]); err != nil {
			return Frame{}, fmt.Errorf("transport: truncated frame: %w", err)
		}
	}
	return Frame{
		Type:    hdr[4],
		Rank:    int(binary.BigEndian.Uint32(hdr[5:])),
		Tag:     int(binary.BigEndian.Uint32(hdr[9:])),
		Payload: payload,
	}, nil
}
