package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Wire format. Every unit on a TCP connection is one frame:
//
//	[u32 payload length][u8 type][u32 source rank][u32 tag][payload...]
//
// All integers are big-endian. The length prefix covers the payload only;
// the fixed header is HeaderLen bytes. Three frame types exist:
//
//   - FrameHello is sent once, immediately after dialing, and identifies
//     the sender's rank to the accepting side (tag and payload unused);
//   - FrameData carries one message: rank is the sender, tag is the MPI
//     tag, payload is the marshaled packet;
//   - FrameBarrier carries barrier protocol traffic: tag is the barrier
//     generation, payload is one byte (BarrierEnter or BarrierRelease).
const (
	FrameHello   byte = 1
	FrameData    byte = 2
	FrameBarrier byte = 3
)

// Barrier phases carried in a FrameBarrier payload.
const (
	BarrierEnter   byte = 0
	BarrierRelease byte = 1
)

// HeaderLen is the fixed frame header size in bytes.
const HeaderLen = 4 + 1 + 4 + 4

// MaxTag is the largest representable tag. It fits an int32, so tags
// survive the wire on every platform Go supports.
const MaxTag = 1<<31 - 1

// MaxPayload bounds a frame payload, defending the decoder against
// hostile or corrupt length prefixes.
const MaxPayload = 1 << 30

// ErrShortFrame reports that a buffer ends before the frame it starts.
var ErrShortFrame = errors.New("transport: short frame")

// Frame is one decoded wire unit.
type Frame struct {
	Type    byte
	Rank    int
	Tag     int
	Payload []byte
}

func validFrameType(t byte) bool {
	return t == FrameHello || t == FrameData || t == FrameBarrier
}

// AppendFrame appends the encoding of f to dst and returns the extended
// slice. It panics on out-of-range rank/tag or oversized payloads — those
// are programming errors on the sending side, mirroring mpi.Isend.
func AppendFrame(dst []byte, f Frame) []byte {
	if !validFrameType(f.Type) {
		panic(fmt.Sprintf("transport: encode frame type %d", f.Type))
	}
	if f.Rank < 0 || f.Rank > MaxTag {
		panic(fmt.Sprintf("transport: encode frame rank %d", f.Rank))
	}
	if f.Tag < 0 || f.Tag > MaxTag {
		panic(fmt.Sprintf("transport: encode frame tag %d", f.Tag))
	}
	if len(f.Payload) > MaxPayload {
		panic(fmt.Sprintf("transport: encode frame payload %d bytes", len(f.Payload)))
	}
	var hdr [HeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(f.Payload)))
	hdr[4] = f.Type
	binary.BigEndian.PutUint32(hdr[5:], uint32(f.Rank))
	binary.BigEndian.PutUint32(hdr[9:], uint32(f.Tag))
	dst = append(dst, hdr[:]...)
	return append(dst, f.Payload...)
}

// EncodeFrame returns the wire encoding of f in a fresh buffer (the
// payload is copied, never aliased).
func EncodeFrame(f Frame) []byte {
	return AppendFrame(make([]byte, 0, HeaderLen+len(f.Payload)), f)
}

// DecodeFrame decodes the frame at the head of b, returning the frame and
// the number of bytes consumed. The returned payload aliases b. It never
// panics: malformed input yields an error (ErrShortFrame when b simply
// ends early, so stream decoders can wait for more bytes).
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < HeaderLen {
		return Frame{}, 0, ErrShortFrame
	}
	n := binary.BigEndian.Uint32(b[0:])
	typ := b[4]
	rank := binary.BigEndian.Uint32(b[5:])
	tag := binary.BigEndian.Uint32(b[9:])
	if n > MaxPayload {
		return Frame{}, 0, fmt.Errorf("transport: frame payload %d exceeds limit %d", n, MaxPayload)
	}
	if !validFrameType(typ) {
		return Frame{}, 0, fmt.Errorf("transport: unknown frame type %d", typ)
	}
	if rank > MaxTag {
		return Frame{}, 0, fmt.Errorf("transport: frame rank %d out of range", rank)
	}
	if tag > MaxTag {
		return Frame{}, 0, fmt.Errorf("transport: frame tag %d out of range", tag)
	}
	total := HeaderLen + int(n)
	if len(b) < total {
		return Frame{}, 0, ErrShortFrame
	}
	return Frame{Type: typ, Rank: int(rank), Tag: int(tag), Payload: b[HeaderLen:total]}, total, nil
}

// WriteFrame writes one frame to w.
func WriteFrame(w io.Writer, f Frame) error {
	_, err := w.Write(EncodeFrame(f))
	return err
}

// ReadFrame reads one frame from r. The payload is freshly allocated. A
// clean EOF before the first header byte is reported as io.EOF; a stream
// that ends mid-frame is an io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Frame{}, io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[0:])
	if n > MaxPayload {
		return Frame{}, fmt.Errorf("transport: frame payload %d exceeds limit %d", n, MaxPayload)
	}
	buf := make([]byte, HeaderLen+n)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[HeaderLen:]); err != nil {
		return Frame{}, fmt.Errorf("transport: truncated frame: %w", err)
	}
	f, _, err := DecodeFrame(buf)
	return f, err
}
