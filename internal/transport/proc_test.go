package transport

// Multi-process tests: the test binary re-executes itself as worker
// processes (one per rank), so a real TCP mesh between real OS processes is
// exercised without building any auxiliary binary.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"
)

const (
	workerEnvRole  = "PULSARQR_TRANSPORT_WORKER"
	workerEnvRank  = "PULSARQR_TRANSPORT_RANK"
	workerEnvPeers = "PULSARQR_TRANSPORT_PEERS"
)

func TestMain(m *testing.M) {
	if os.Getenv(workerEnvRole) != "" {
		os.Exit(runWorker())
	}
	os.Exit(m.Run())
}

// runWorker is the body of one spawned rank: join the mesh, run several
// barrier generations interleaved with a ring token pass, and exit 0 only
// if every step checks out.
func runWorker() int {
	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "worker: "+format+"\n", args...)
		return 1
	}
	rank, err := strconv.Atoi(os.Getenv(workerEnvRank))
	if err != nil {
		return fail("bad rank: %v", err)
	}
	peers := strings.Split(os.Getenv(workerEnvPeers), ",")
	ep, err := DialTCP(TCPConfig{
		Rank:              rank,
		Peers:             peers,
		RendezvousTimeout: 20 * time.Second,
	})
	if err != nil {
		return fail("dial: %v", err)
	}
	defer ep.Close()
	n := ep.Size()

	for gen := 0; gen < 3; gen++ {
		if err := ep.Barrier(); err != nil {
			return fail("barrier gen %d: %v", gen, err)
		}
		// Ring token pass: rank r sends (gen, r) to r+1 and expects
		// (gen, r-1) from r-1 — proves post-barrier data flow each round.
		next, prev := (rank+1)%n, (rank+n-1)%n
		ep.Isend([]byte{byte(gen), byte(rank)}, next, 40+gen)
		r := ep.Irecv(prev, 40+gen)
		r.Wait()
		if r.Canceled() {
			return fail("gen %d token recv canceled", gen)
		}
		d := r.Data()
		if len(d) != 2 || d[0] != byte(gen) || d[1] != byte(prev) {
			return fail("gen %d token %v from %d", gen, d, prev)
		}
	}
	if err := ep.Barrier(); err != nil {
		return fail("final barrier: %v", err)
	}
	fmt.Println("worker ok rank", rank)
	return 0
}

// freeLoopbackAddrs reserves n distinct loopback ports by binding and
// releasing them; the worker processes re-bind them immediately after.
func freeLoopbackAddrs(t *testing.T, n int) []string {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestBarrierAcrossProcesses runs a 3-rank communicator as 3 real OS
// processes over TCP and asserts every rank's barriers and token passes
// complete — the satellite requirement "Barrier across 3 real processes".
func TestBarrierAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	const n = 3
	addrs := freeLoopbackAddrs(t, n)
	peerList := strings.Join(addrs, ",")

	cmds := make([]*exec.Cmd, n)
	outs := make([]strings.Builder, n)
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe, "-test.run=^$")
		cmd.Env = append(os.Environ(),
			workerEnvRole+"=1",
			fmt.Sprintf("%s=%d", workerEnvRank, i),
			workerEnvPeers+"="+peerList,
		)
		cmd.Stdout = &outs[i]
		cmd.Stderr = &outs[i]
		if err := cmd.Start(); err != nil {
			t.Fatalf("start rank %d: %v", i, err)
		}
		cmds[i] = cmd
	}
	for i, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Errorf("rank %d failed: %v\n%s", i, err, outs[i].String())
		}
	}
	for i := range outs {
		if !strings.Contains(outs[i].String(), fmt.Sprintf("worker ok rank %d", i)) {
			t.Errorf("rank %d did not report success:\n%s", i, outs[i].String())
		}
	}
}
