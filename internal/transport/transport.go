// Package transport is the pluggable inter-node communication layer of the
// PULSAR runtime reproduction. It abstracts the six MPI calls the runtime
// relies on — Isend, Irecv, Test, Get_count, Barrier and Cancel — behind an
// Endpoint interface with two implementations:
//
//   - Local: the zero-copy in-process substrate (backed by internal/mpi),
//     where every rank is a set of goroutines in one OS process; and
//   - TCP: a real network transport where every rank is its own OS process
//     and messages travel through length-prefixed frames over a full mesh
//     of TCP connections (see wire.go and docs/TRANSPORT.md).
//
// The runtime's proxy path is written against Endpoint only, so a
// factorization runs unchanged on either substrate.
package transport

// Any is the wildcard for Irecv's source or tag (MPI_ANY_SOURCE /
// MPI_ANY_TAG). It equals mpi.Any.
const Any = -1

// Request tracks an outstanding Isend or Irecv, mirroring the MPI request
// object surface the runtime uses.
type Request interface {
	// Test reports whether the request has completed (MPI_Test).
	Test() bool
	// Wait blocks until the request completes or is canceled.
	Wait()
	// Cancel cancels an outstanding receive (MPI_Cancel), reporting
	// whether the cancellation took effect. Eager sends report false.
	Cancel() bool
	// Canceled reports whether the request was canceled before completing.
	Canceled() bool
	// Data returns the received payload (valid after a recv completes).
	Data() []byte
	// GetCount returns the payload size in bytes (MPI_Get_count).
	GetCount() int
	// Source returns the matched source rank of a completed receive.
	Source() int
	// Tag returns the matched tag of a completed receive.
	Tag() int
}

// Endpoint is one rank's attachment to the communicator: the six-call
// surface the runtime's proxy drives, plus lifecycle and accounting.
//
// Semantics (identical across implementations, matching internal/mpi):
// sends are eager — the payload is copied (or serialized) before Isend
// returns, so the caller may reuse its buffer immediately, and the returned
// request tests complete at once. Receives match on a (source, tag) pair,
// either of which may be Any; messages between a given pair of ranks are
// non-overtaking with respect to matching receives.
type Endpoint interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the communicator.
	Size() int
	// Isend sends data to dest with the given tag. The payload is copied;
	// the request completes eagerly.
	Isend(data []byte, dest, tag int) Request
	// Irecv posts a receive for a message from source (or Any) with the
	// given tag (or Any).
	Irecv(source, tag int) Request
	// Barrier blocks until every rank has entered it. It returns an error
	// when the communicator has failed (e.g. a peer process died).
	Barrier() error
	// OnArrival registers a callback invoked (outside internal locks)
	// whenever a message arrives at this rank; the runtime's proxy uses it
	// to wake up instead of busy-polling.
	OnArrival(fn func())
	// Stats reports the number of messages and payload bytes this endpoint
	// has sent so far.
	Stats() (messages, bytes int64)
	// Close releases the endpoint's resources. Posted receives that can no
	// longer complete are canceled so no caller is left hanging.
	Close() error
}
