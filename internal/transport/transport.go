// Package transport is the pluggable inter-node communication layer of the
// PULSAR runtime reproduction. It abstracts the six MPI calls the runtime
// relies on — Isend, Irecv, Test, Get_count, Barrier and Cancel — behind an
// Endpoint interface with two implementations:
//
//   - Local: the zero-copy in-process substrate (backed by internal/mpi),
//     where every rank is a set of goroutines in one OS process; and
//   - TCP: a real network transport where every rank is its own OS process
//     and messages travel through length-prefixed frames over a full mesh
//     of TCP connections (see wire.go and docs/TRANSPORT.md).
//
// The runtime's proxy path is written against Endpoint only, so a
// factorization runs unchanged on either substrate.
package transport

import "fmt"

// Any is the wildcard for Irecv's source or tag (MPI_ANY_SOURCE /
// MPI_ANY_TAG). It equals mpi.Any.
const Any = -1

// PeerDeathError reports that one peer rank of the communicator is gone —
// its process exited, its connection broke past the reconnect budget, or
// its heartbeats stopped. Layers above the Endpoint surface unwrap it to
// distinguish network death from algorithmic deadlock.
type PeerDeathError struct {
	Rank int
	Err  error
}

func (e *PeerDeathError) Error() string {
	return fmt.Sprintf("transport: peer rank %d is dead: %v", e.Rank, e.Err)
}

func (e *PeerDeathError) Unwrap() error { return e.Err }

// FailureObserver is implemented by endpoints that can report the death of
// individual peers (the TCP substrate, Chaos wrappers, mux job sessions).
// The in-process Local substrate never loses a peer and does not implement
// it; callers type-assert.
type FailureObserver interface {
	// OnPeerFailure registers a callback invoked (outside internal locks)
	// when a peer rank departs or is declared dead; nil unregisters every
	// callback. Each endpoint instance expects one logical consumer — the
	// runtime's proxy for a run endpoint, the Mux for its underlying one.
	OnPeerFailure(fn func(rank int, err error))
	// PeerFailure returns the first peer death observed on this endpoint
	// (typically a *PeerDeathError), or nil while the full communicator is
	// healthy. It keeps reporting after callbacks were unregistered, so
	// error paths can recover the cause after the fact.
	PeerFailure() error
}

// Crasher is implemented by endpoints that can simulate the abrupt death of
// their own rank for fault-injection tests: connections are severed without
// the clean-shutdown handshake, nothing queued is flushed, and peers are
// left to discover the death through their own failure detection.
type Crasher interface {
	Crash()
}

// LinkSeverer is implemented by endpoints whose link to one peer can be cut
// underneath the protocol — both directions of the TCP pair are closed as a
// network fault would, while queues, windows and counters stay intact, so
// the reconnect machinery (not a fresh rendezvous) must repair the link.
type LinkSeverer interface {
	SeverLink(peer int)
}

// Request tracks an outstanding Isend or Irecv, mirroring the MPI request
// object surface the runtime uses.
type Request interface {
	// Test reports whether the request has completed (MPI_Test).
	Test() bool
	// Wait blocks until the request completes or is canceled.
	Wait()
	// Cancel cancels an outstanding receive (MPI_Cancel), reporting
	// whether the cancellation took effect. Eager sends report false.
	Cancel() bool
	// Canceled reports whether the request was canceled before completing.
	Canceled() bool
	// Data returns the received payload (valid after a recv completes).
	Data() []byte
	// GetCount returns the payload size in bytes (MPI_Get_count).
	GetCount() int
	// Source returns the matched source rank of a completed receive.
	Source() int
	// Tag returns the matched tag of a completed receive.
	Tag() int
}

// Endpoint is one rank's attachment to the communicator: the six-call
// surface the runtime's proxy drives, plus lifecycle and accounting.
//
// Semantics (identical across implementations, matching internal/mpi):
// sends are eager — the payload is copied (or serialized) before Isend
// returns, so the caller may reuse its buffer immediately, and the returned
// request tests complete at once. Receives match on a (source, tag) pair,
// either of which may be Any; messages between a given pair of ranks are
// non-overtaking with respect to matching receives.
type Endpoint interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the communicator.
	Size() int
	// Isend sends data to dest with the given tag. The payload is copied;
	// the request completes eagerly.
	Isend(data []byte, dest, tag int) Request
	// Irecv posts a receive for a message from source (or Any) with the
	// given tag (or Any).
	Irecv(source, tag int) Request
	// Barrier blocks until every rank has entered it. It returns an error
	// when the communicator has failed (e.g. a peer process died).
	Barrier() error
	// OnArrival registers a callback invoked (outside internal locks)
	// whenever a message arrives at this rank; the runtime's proxy uses it
	// to wake up instead of busy-polling.
	OnArrival(fn func())
	// Stats reports the number of messages and payload bytes this endpoint
	// has sent so far.
	Stats() (messages, bytes int64)
	// Close releases the endpoint's resources. Posted receives that can no
	// longer complete are canceled so no caller is left hanging.
	Close() error
}
