package transport

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTCPMesh brings up an n-rank TCP communicator on loopback, using
// pre-bound listeners so the test never races on port reuse.
func newTCPMesh(t *testing.T, n int) []Endpoint {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	eps := make([]Endpoint, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			eps[i], errs[i] = DialTCP(TCPConfig{
				Rank:              i,
				Peers:             peers,
				Listener:          lns[i],
				RendezvousTimeout: 10 * time.Second,
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	t.Cleanup(func() {
		for _, ep := range eps {
			ep.Close()
		}
	})
	return eps
}

func TestTCPSendRecvMatching(t *testing.T) {
	eps := newTCPMesh(t, 2)

	// Exact (source, tag) match, payload integrity, Source/Tag/GetCount.
	want := []byte("hello over the wire")
	eps[0].Isend(want, 1, 7)
	r := eps[1].Irecv(0, 7)
	r.Wait()
	if !r.Test() || r.Canceled() {
		t.Fatalf("recv state: done=%v canceled=%v", r.Test(), r.Canceled())
	}
	if string(r.Data()) != string(want) || r.GetCount() != len(want) {
		t.Fatalf("payload %q count %d", r.Data(), r.GetCount())
	}
	if r.Source() != 0 || r.Tag() != 7 {
		t.Fatalf("matched (%d,%d), want (0,7)", r.Source(), r.Tag())
	}

	// Zero-length payload.
	eps[1].Isend(nil, 0, 3)
	r = eps[0].Irecv(Any, Any)
	r.Wait()
	if r.GetCount() != 0 || r.Source() != 1 || r.Tag() != 3 {
		t.Fatalf("zero-length recv: count=%d src=%d tag=%d", r.GetCount(), r.Source(), r.Tag())
	}

	// Wildcard tag with a specific source; messages are non-overtaking.
	for i := 0; i < 10; i++ {
		eps[0].Isend([]byte{byte(i)}, 1, 100+i)
	}
	for i := 0; i < 10; i++ {
		r := eps[1].Irecv(0, Any)
		r.Wait()
		if r.Data()[0] != byte(i) || r.Tag() != 100+i {
			t.Fatalf("message %d out of order: got payload %d tag %d", i, r.Data()[0], r.Tag())
		}
	}

	// A posted receive completes on later arrival.
	r = eps[1].Irecv(0, 55)
	if r.Test() {
		t.Fatal("recv completed before send")
	}
	eps[0].Isend([]byte("late"), 1, 55)
	r.Wait()
	if string(r.Data()) != "late" {
		t.Fatalf("late recv: %q", r.Data())
	}
}

func TestTCPSelfSend(t *testing.T) {
	eps := newTCPMesh(t, 2)
	buf := []byte("to myself")
	eps[0].Isend(buf, 0, 9)
	buf[0] = 'X' // Isend copies: caller may clobber its buffer
	r := eps[0].Irecv(0, 9)
	r.Wait()
	if string(r.Data()) != "to myself" {
		t.Fatalf("self send: %q", r.Data())
	}
}

func TestTCPBarrier(t *testing.T) {
	const n = 3
	eps := newTCPMesh(t, n)
	// Several generations; a counter incremented strictly between barriers
	// observes every rank's presence.
	var wg sync.WaitGroup
	var mu sync.Mutex
	count := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for g := 0; g < 5; g++ {
				mu.Lock()
				count++
				mu.Unlock()
				if err := eps[i].Barrier(); err != nil {
					t.Errorf("rank %d barrier gen %d: %v", i, g, err)
					return
				}
				mu.Lock()
				if count < (g+1)*n {
					t.Errorf("rank %d: barrier %d released early (count %d)", i, g, count)
				}
				mu.Unlock()
				if err := eps[i].Barrier(); err != nil { // second barrier separates generations
					t.Errorf("rank %d barrier: %v", i, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestTCPStats(t *testing.T) {
	eps := newTCPMesh(t, 2)
	eps[0].Isend(make([]byte, 100), 1, 1)
	eps[0].Isend(make([]byte, 28), 1, 2)
	msgs, bytes := eps[0].Stats()
	if msgs != 2 || bytes != 128 {
		t.Fatalf("stats: %d msgs %d bytes, want 2/128", msgs, bytes)
	}
	if m, b := eps[1].Stats(); m != 0 || b != 0 {
		t.Fatalf("receiver stats: %d msgs %d bytes, want 0/0", m, b)
	}
}

// TestTCPDialFailureNoHang exercises the backoff-exhaustion path: the peer
// address never accepts, so DialTCP must return an error within the
// rendezvous budget instead of hanging.
func TestTCPDialFailureNoHang(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close() // nothing listens here any more: connection refused

	start := time.Now()
	ep, err := DialTCP(TCPConfig{
		Rank:              0,
		Peers:             []string{ln.Addr().String(), deadAddr},
		Listener:          ln,
		RendezvousTimeout: 500 * time.Millisecond,
		DialBackoff:       10 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err == nil {
		ep.Close()
		t.Fatal("DialTCP succeeded against a dead peer")
	}
	if !strings.Contains(err.Error(), "rank 1") {
		t.Fatalf("error does not identify the peer: %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("dial failure took %v, backoff did not give up", elapsed)
	}
}

// TestTCPRendezvousTimeout exercises the inbound half: the peer's address
// accepts connections but the peer never dials back, so the hello wait must
// time out with an error naming the missing rank.
func TestTCPRendezvousTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	silent, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	go func() { // accept and hold, never send hello, never dial back
		for {
			c, err := silent.Accept()
			if err != nil {
				return
			}
			defer c.Close()
		}
	}()

	ep, err := DialTCP(TCPConfig{
		Rank:              0,
		Peers:             []string{ln.Addr().String(), silent.Addr().String()},
		Listener:          ln,
		RendezvousTimeout: 300 * time.Millisecond,
	})
	if err == nil {
		ep.Close()
		t.Fatal("DialTCP succeeded without the peer's hello")
	}
	if !strings.Contains(err.Error(), "[1]") {
		t.Fatalf("error does not name the missing rank: %v", err)
	}
}

// TestTCPCancelInFlight cancels a posted Irecv while the peer is actively
// streaming unrelated bytes at us, then shows the link still works.
func TestTCPCancelInFlight(t *testing.T) {
	eps := newTCPMesh(t, 2)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		payload := make([]byte, 64<<10)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			eps[0].Isend(payload, 1, 7) // tag 7: never matches the canceled recv
		}
	}()

	r := eps[1].Irecv(0, 5) // tag 5: nothing ever sends this
	time.Sleep(20 * time.Millisecond)
	if !r.Cancel() {
		t.Fatal("Cancel of a pending recv returned false")
	}
	r.Wait() // must return immediately, not hang
	if !r.Canceled() || r.Test() {
		t.Fatalf("after cancel: canceled=%v done=%v", r.Canceled(), r.Test())
	}
	if r.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	close(stop)
	<-done

	// The transport survives: the in-flight tag-7 traffic is deliverable.
	r2 := eps[1].Irecv(0, 7)
	r2.Wait()
	if r2.GetCount() != 64<<10 {
		t.Fatalf("post-cancel recv got %d bytes", r2.GetCount())
	}
}

// TestTCPPeerDeathCancelsRecvs kills one endpoint and asserts the
// survivor's posted receive is canceled rather than hanging, and that
// Barrier reports the failure.
func TestTCPPeerDeathCancelsRecvs(t *testing.T) {
	eps := newTCPMesh(t, 2)
	r := eps[1].Irecv(0, 5)
	eps[0].Close()

	donech := make(chan struct{})
	go func() {
		r.Wait()
		close(donech)
	}()
	select {
	case <-donech:
	case <-time.After(5 * time.Second):
		t.Fatal("posted recv hung after peer death")
	}
	if !r.Canceled() {
		t.Fatal("recv not canceled after peer death")
	}
	if err := eps[1].Barrier(); err == nil {
		t.Fatal("Barrier succeeded on a dead communicator")
	}
	// Posting after failure yields an already-canceled request.
	if r := eps[1].Irecv(Any, Any); !r.Canceled() {
		t.Fatal("post-failure Irecv not canceled")
	}
}

func TestTCPLargeAndConcurrent(t *testing.T) {
	const n = 3
	eps := newTCPMesh(t, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			next := (i + 1) % n
			for k := 0; k < 20; k++ {
				payload := make([]byte, 1+(k*7919)%100000)
				for b := range payload {
					payload[b] = byte(k)
				}
				eps[i].Isend(payload, next, k)
			}
			prev := (i + n - 1) % n
			for k := 0; k < 20; k++ {
				r := eps[i].Irecv(prev, k)
				r.Wait()
				want := 1 + (k*7919)%100000
				if r.GetCount() != want {
					t.Errorf("rank %d msg %d: %d bytes, want %d", i, k, r.GetCount(), want)
					return
				}
				if d := r.Data(); d[0] != byte(k) || d[len(d)-1] != byte(k) {
					t.Errorf("rank %d msg %d corrupt", i, k)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	var bwg sync.WaitGroup
	for i := 0; i < n; i++ {
		bwg.Add(1)
		go func(i int) {
			defer bwg.Done()
			if err := eps[i].Barrier(); err != nil {
				t.Errorf("rank %d final barrier: %v", i, err)
			}
		}(i)
	}
	bwg.Wait()
}

func TestTCPConfigValidation(t *testing.T) {
	if _, err := DialTCP(TCPConfig{Rank: 0}); err == nil {
		t.Fatal("empty peer list accepted")
	}
	if _, err := DialTCP(TCPConfig{Rank: 2, Peers: []string{"a", "b"}}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := DialTCP(TCPConfig{Rank: 0, Peers: []string{"256.0.0.1:bad"}}); err == nil {
		t.Fatal("unbindable address accepted")
	}
}
