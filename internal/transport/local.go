package transport

import (
	"sync/atomic"
	"time"

	"pulsarqr/internal/mpi"
)

// Local is the in-process communicator: size ranks inside one OS process,
// backed by the internal/mpi substrate. Message payloads are copied between
// ranks (the isolation a distributed-memory system enforces) but never
// touch a socket, which keeps the single-process path as fast as the seed
// implementation.
type Local struct {
	world *mpi.World
	eps   []*localEndpoint
}

// NewLocal creates an in-process communicator spanning size ranks.
func NewLocal(size int) *Local {
	l := &Local{world: mpi.NewWorld(size), eps: make([]*localEndpoint, size)}
	for i := range l.eps {
		l.eps[i] = &localEndpoint{owner: l, comm: l.world.Comm(i), links: make([]linkCtrs, size)}
	}
	return l
}

// Size returns the number of ranks.
func (l *Local) Size() int { return l.world.Size() }

// Endpoint returns the communicator endpoint for one rank.
func (l *Local) Endpoint(rank int) Endpoint { return l.eps[rank] }

type localEndpoint struct {
	owner *Local
	comm  *mpi.Comm
	msgs  atomic.Int64
	bytes atomic.Int64
	links []linkCtrs
	barT  barrierCtrs
}

func (e *localEndpoint) Rank() int { return e.comm.Rank() }
func (e *localEndpoint) Size() int { return e.comm.Size() }

func (e *localEndpoint) Isend(data []byte, dest, tag int) Request {
	e.msgs.Add(1)
	e.bytes.Add(int64(len(data)))
	e.links[dest].sentFrames.Add(1)
	e.links[dest].sentBytes.Add(int64(len(data)))
	// In-process delivery is immediate, so the receive side of the link is
	// credited here, on the destination endpoint's counters.
	d := e.owner.eps[dest]
	d.links[e.comm.Rank()].recvFrames.Add(1)
	d.links[e.comm.Rank()].recvBytes.Add(int64(len(data)))
	return e.comm.Isend(data, dest, tag)
}

func (e *localEndpoint) Irecv(source, tag int) Request {
	return e.comm.Irecv(source, tag)
}

func (e *localEndpoint) Barrier() error {
	start := time.Now()
	e.comm.Barrier()
	e.barT.observe(start)
	return nil
}

func (e *localEndpoint) OnArrival(fn func()) { e.comm.OnArrival(fn) }

// Stats reports the messages and payload bytes sent through this endpoint.
// Unlike mpi.World.Stats, which aggregates the whole world, the per-rank
// accounting here matches what a real network transport can observe — both
// implementations report through the same interface.
func (e *localEndpoint) Stats() (messages, bytes int64) {
	return e.msgs.Load(), e.bytes.Load()
}

// Links reports per-peer traffic. In-process sends complete synchronously,
// so queue depths are always zero.
func (e *localEndpoint) Links() []LinkStats {
	out := make([]LinkStats, len(e.links))
	for j := range out {
		out[j] = e.links[j].snapshot(j, 0)
	}
	return out
}

// BarrierStats reports how many barriers completed and the total wait.
func (e *localEndpoint) BarrierStats() BarrierStats { return e.barT.stats() }

func (e *localEndpoint) Close() error { return nil }
