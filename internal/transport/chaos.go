package transport

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Schedule is a seeded, deterministic fault plan for a Chaos endpoint.
// Every message's fate — dropped, duplicated, delayed — is decided by a
// per-destination PRNG derived from Seed, so two runs issuing the same
// per-link send sequence draw the same verdicts in the same order and the
// FaultLog compares byte-identical. Sever and kill events fire on message
// counts, not wall-clock, for the same reason.
type Schedule struct {
	// Seed derives every per-link PRNG; the same seed and the same
	// per-link send sequence reproduce the same fault sequence exactly.
	Seed int64
	// Drop is the probability in [0,1] that a message's first transmission
	// is lost (the retransmit protocol recovers it).
	Drop float64
	// Duplicate is the probability that a message is transmitted twice
	// (the receiver deduplicates).
	Duplicate float64
	// DelayP50 and DelayP95 shape the injected latency distribution: half
	// of all messages are delayed up to DelayP50, 95% up to DelayP95, with
	// a linear tail capped near 2×DelayP95. Zero injects no delay.
	DelayP50 time.Duration
	DelayP95 time.Duration
	// Sever lists link-cut events: when the AtFrame-th message (counting
	// per destination, from 1) is about to go to Peer, the link is severed.
	// On a substrate implementing LinkSeverer (TCP) the real connections
	// are cut and the substrate's reconnect machinery must repair them;
	// otherwise the link goes dark for For and the retransmit protocol
	// carries the traffic across the gap.
	Sever []SeverEvent
	// KillAtFrame, when positive, kills this rank abruptly when its
	// KillAtFrame-th message (counting across all destinations) is sent:
	// Crash() on a substrate implementing Crasher, else a local blackout.
	KillAtFrame int64
	// RetransmitInterval is the resend cadence for unacknowledged
	// messages. Default 20ms.
	RetransmitInterval time.Duration
}

// SeverEvent cuts the link to Peer when this rank's AtFrame-th message to
// it (counting from 1) is about to be sent.
type SeverEvent struct {
	Peer    int
	AtFrame int64
	// For is how long the link stays dark on substrates without a real
	// LinkSeverer. Default 50ms.
	For time.Duration
}

// Chaos message kinds, first byte of every payload on the underlying
// endpoint.
const (
	chaosData byte = 1
	chaosAck  byte = 2
)

const (
	chaosDataHdr = 1 + 4 + 4 // kind, seq, tag
	chaosAckLen  = 1 + 4     // kind, cumulative ack
	chaosAckEach = 4         // ack cadence: one cumulative ack per this many deliveries
)

// Chaos wraps an Endpoint with a deterministic fault injector and the
// retransmission protocol that makes the faults survivable: every message
// gets a per-link sequence number and is retained until the receiver's
// cumulative acknowledgement covers it; the receiver reorders by sequence
// number and deduplicates, so messages above the Chaos surface arrive
// exactly once, in per-link order — drops, duplicates and delays below are
// invisible except as latency. That is the property the chaos tests
// exercise: a factorization over a lossy link must still match the
// sequential oracle bit for bit.
//
// Chaos works on any substrate. On TCP it composes with the substrate's
// own resilience: a Sever event cuts the real connections (LinkSeverer)
// and the TCP reconnect layer repairs them, while Chaos's retransmission
// covers whatever the gap swallowed.
type Chaos struct {
	ep  Endpoint
	sch Schedule
	mb  *mailbox

	rank, size int

	send []*chaosSender // per-destination, nil at own rank
	recv []*chaosRecver // per-source, nil at own rank

	sendN  atomic.Int64 // messages across all destinations (kill trigger)
	killed atomic.Bool

	pendMu  sync.Mutex
	pending Request // the pump's outstanding wildcard receive

	failMu  sync.Mutex
	failFns []func(rank int, err error)

	closed    atomic.Bool
	closeOnce sync.Once
	retick    *time.Ticker
	stopRe    chan struct{}
	wg        sync.WaitGroup

	msgs, bytes atomic.Int64
}

// chaosSender is the per-destination send half: sequence numbers, the
// unacked retransmission window, the fault PRNG and its verdict log.
type chaosSender struct {
	mu      sync.Mutex
	dst     int
	nextSeq uint32
	window  map[uint32][]byte // seq → encoded chaos frame awaiting ack
	rng     *rand.Rand
	frames  int64 // first transmissions on this link (sever trigger)
	dark    time.Time
	severed []bool // per Schedule.Sever event: already fired?
	log     []byte
}

// chaosRecver is the per-source receive half: the next expected sequence
// number, the reorder buffer, and the ack cadence counter.
type chaosRecver struct {
	mu     sync.Mutex
	expect uint32
	buf    map[uint32]envelope
	nAcked int
}

// NewChaos wraps ep with the fault schedule sch. The wrapper owns all
// traffic on ep (it posts a wildcard receive pump); use the Chaos endpoint
// exclusively once created. Closing the Chaos does not close ep.
func NewChaos(ep Endpoint, sch Schedule) *Chaos {
	if sch.RetransmitInterval <= 0 {
		sch.RetransmitInterval = 20 * time.Millisecond
	}
	for i := range sch.Sever {
		if sch.Sever[i].For <= 0 {
			sch.Sever[i].For = 50 * time.Millisecond
		}
	}
	size := ep.Size()
	c := &Chaos{
		ep:     ep,
		sch:    sch,
		mb:     newMailbox(size),
		rank:   ep.Rank(),
		size:   size,
		send:   make([]*chaosSender, size),
		recv:   make([]*chaosRecver, size),
		stopRe: make(chan struct{}),
	}
	for j := 0; j < size; j++ {
		if j == c.rank {
			continue
		}
		// One PRNG per ordered link, derived from the seed and both rank
		// ids: the verdict stream of link (i→j) depends only on the seed
		// and the sequence of sends on that link.
		c.send[j] = &chaosSender{
			dst:     j,
			window:  map[uint32][]byte{},
			rng:     rand.New(rand.NewSource(sch.Seed ^ int64(c.rank)<<20 ^ int64(j)<<4 ^ 0x5eed)),
			severed: make([]bool, len(sch.Sever)),
		}
		c.recv[j] = &chaosRecver{buf: map[uint32]envelope{}}
	}
	if fo, ok := ep.(FailureObserver); ok {
		fo.OnPeerFailure(func(rank int, err error) {
			c.mb.depart(rank)
			c.failMu.Lock()
			fns := append([]func(rank int, err error){}, c.failFns...)
			c.failMu.Unlock()
			for _, fn := range fns {
				fn(rank, err)
			}
		})
	}
	c.retick = time.NewTicker(sch.RetransmitInterval)
	c.wg.Add(2)
	go c.pump()
	go c.retransmitLoop()
	return c
}

func (c *Chaos) Rank() int { return c.rank }
func (c *Chaos) Size() int { return c.size }

func (c *Chaos) OnArrival(fn func()) { c.mb.setNotify(fn) }

func (c *Chaos) Stats() (messages, bytes int64) {
	return c.msgs.Load(), c.bytes.Load()
}

// Barrier delegates to the underlying endpoint: barrier traffic is control
// plane, not subject to injected faults (MPI semantics make no delivery
// promise at a barrier either way).
func (c *Chaos) Barrier() error { return c.ep.Barrier() }

// OnPeerFailure and PeerFailure forward the underlying endpoint's failure
// surface (if any) through the wrapper, plus deaths Chaos itself injected.
func (c *Chaos) OnPeerFailure(fn func(rank int, err error)) {
	c.failMu.Lock()
	if fn == nil {
		c.failFns = nil
	} else {
		c.failFns = append(c.failFns, fn)
	}
	c.failMu.Unlock()
}

func (c *Chaos) PeerFailure() error {
	if fo, ok := c.ep.(FailureObserver); ok {
		return fo.PeerFailure()
	}
	return nil
}

// Isend sends data to dest with the given tag, subjecting the message's
// first transmission to the schedule's fault draws. The payload is copied
// before return; delivery above the receiving Chaos happens exactly once,
// in per-link order, whatever happens on the wire in between.
func (c *Chaos) Isend(data []byte, dest, tag int) Request {
	if dest < 0 || dest >= c.size {
		panic(fmt.Sprintf("transport: chaos Isend to rank %d out of world of %d", dest, c.size))
	}
	c.msgs.Add(1)
	c.bytes.Add(int64(len(data)))
	if dest == c.rank {
		buf := make([]byte, len(data))
		copy(buf, data)
		c.mb.push(envelope{source: c.rank, tag: tag, data: buf})
		return &netRequest{done: true, source: dest, tag: tag}
	}
	if c.killed.Load() || c.closed.Load() {
		return &netRequest{done: true, source: dest, tag: tag}
	}

	if k := c.sch.KillAtFrame; k > 0 && c.sendN.Add(1) == k {
		c.kill()
		return &netRequest{done: true, source: dest, tag: tag}
	}

	s := c.send[dest]
	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	frame := make([]byte, chaosDataHdr+len(data))
	frame[0] = chaosData
	binary.BigEndian.PutUint32(frame[1:], seq)
	binary.BigEndian.PutUint32(frame[5:], uint32(tag))
	copy(frame[chaosDataHdr:], data)
	s.window[seq] = frame
	s.frames++

	// Sever events fire on the per-link message count, before the fault
	// draws, so they do not disturb the PRNG stream.
	for i, ev := range c.sch.Sever {
		if !s.severed[i] && ev.Peer == dest && s.frames == ev.AtFrame {
			s.severed[i] = true
			s.log = append(s.log, '!')
			if sv, ok := c.ep.(LinkSeverer); ok {
				sv.SeverLink(dest)
			} else {
				s.dark = time.Now().Add(ev.For)
			}
		}
	}

	// Exactly three draws per message, whatever the verdict, so the
	// stream stays aligned and the log replays byte-identically.
	uDrop := s.rng.Float64()
	uDup := s.rng.Float64()
	uDelay := s.rng.Float64()
	verdict := byte('.')
	var delay time.Duration
	switch {
	case uDrop < c.sch.Drop:
		verdict = 'x'
	case uDup < c.sch.Duplicate:
		verdict = '2'
	default:
		if delay = c.sch.delay(uDelay); delay > 0 {
			s.log = append(s.log, '~')
			s.log = appendMicros(s.log, delay)
			s.log = append(s.log, ';')
		}
	}
	if verdict != '.' || delay == 0 {
		s.log = append(s.log, verdict)
	}
	dark := !s.dark.IsZero() && time.Now().Before(s.dark)
	s.mu.Unlock()

	switch {
	case verdict == 'x' || dark:
		// Lost: the retransmit loop recovers it from the window.
	case delay > 0:
		d := delay
		time.AfterFunc(d, func() {
			if !c.closed.Load() && !c.killed.Load() {
				c.ep.Isend(frame, dest, 0)
			}
		})
	default:
		c.ep.Isend(frame, dest, 0)
		if verdict == '2' {
			c.ep.Isend(frame, dest, 0)
		}
	}
	return &netRequest{done: true, source: dest, tag: tag}
}

func (c *Chaos) Irecv(source, tag int) Request {
	req := &netRequest{isRecv: true, source: source, tag: tag, mb: c.mb}
	c.mb.post(req)
	return req
}

// delay maps one uniform draw to the schedule's latency distribution.
func (s *Schedule) delay(u float64) time.Duration {
	p50, p95 := s.DelayP50, s.DelayP95
	if p50 <= 0 && p95 <= 0 {
		return 0
	}
	if p95 < p50 {
		p95 = p50
	}
	switch {
	case u < 0.5:
		return time.Duration(2 * u * float64(p50))
	case u < 0.95:
		return p50 + time.Duration((u-0.5)/0.45*float64(p95-p50))
	default:
		return p95 + time.Duration((u-0.95)/0.05*float64(p95))
	}
}

// appendMicros appends the delay rounded to microseconds in decimal.
func appendMicros(b []byte, d time.Duration) []byte {
	us := d.Microseconds()
	if us == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for us > 0 {
		i--
		tmp[i] = byte('0' + us%10)
		us /= 10
	}
	return append(b, tmp[i:]...)
}

// FaultLog renders every link's verdict sequence — 'x' drop, '2'
// duplicate, '~<µs>;' delay, '.' clean, '!' sever — one line per
// destination. Two runs with the same seed and per-link send sequence
// produce byte-identical logs; the replay test asserts exactly that.
func (c *Chaos) FaultLog() string {
	var dsts []int
	for j, s := range c.send {
		if s != nil {
			dsts = append(dsts, j)
		}
	}
	sort.Ints(dsts)
	out := make([]byte, 0, 256)
	for _, j := range dsts {
		s := c.send[j]
		s.mu.Lock()
		out = append(out, fmt.Sprintf("->%d:", j)...)
		out = append(out, s.log...)
		out = append(out, '\n')
		s.mu.Unlock()
	}
	return string(out)
}

// pump owns the underlying endpoint's receive side: one wildcard receive
// at a time, demultiplexing data frames through the per-source reorder
// buffer and acks into the senders' windows.
func (c *Chaos) pump() {
	defer c.wg.Done()
	for {
		if c.closed.Load() || c.killed.Load() {
			return
		}
		req := c.ep.Irecv(Any, Any)
		c.pendMu.Lock()
		c.pending = req
		c.pendMu.Unlock()
		req.Wait()
		if req.Canceled() {
			return
		}
		c.handle(req.Source(), req.Data())
	}
}

func (c *Chaos) handle(src int, msg []byte) {
	if len(msg) < 1 || src == c.rank {
		return
	}
	switch msg[0] {
	case chaosAck:
		if len(msg) != chaosAckLen {
			return
		}
		ack := binary.BigEndian.Uint32(msg[1:])
		s := c.send[src]
		if s == nil {
			return
		}
		s.mu.Lock()
		for seq := range s.window {
			if seq < ack {
				delete(s.window, seq)
			}
		}
		s.mu.Unlock()
	case chaosData:
		if len(msg) < chaosDataHdr {
			return
		}
		r := c.recv[src]
		if r == nil {
			return
		}
		seq := binary.BigEndian.Uint32(msg[1:])
		tag := int(binary.BigEndian.Uint32(msg[5:]))
		env := envelope{source: src, tag: tag, data: msg[chaosDataHdr:]}
		var deliver []envelope
		ackNow := false
		r.mu.Lock()
		switch {
		case seq < r.expect:
			// Duplicate of something already delivered: re-ack so the
			// sender stops retransmitting it.
			ackNow = true
		case seq == r.expect:
			deliver = append(deliver, env)
			r.expect++
			for {
				next, ok := r.buf[r.expect]
				if !ok {
					break
				}
				delete(r.buf, r.expect)
				deliver = append(deliver, next)
				r.expect++
			}
			r.nAcked += len(deliver)
			if r.nAcked >= chaosAckEach {
				r.nAcked = 0
				ackNow = true
			}
		default: // a gap: hold for reorder, tell the sender where we are
			r.buf[seq] = env
			ackNow = true
		}
		expect := r.expect
		r.mu.Unlock()
		for _, e := range deliver {
			c.mb.push(e)
		}
		if ackNow {
			c.sendAck(src, expect)
		}
	}
}

func (c *Chaos) sendAck(src int, expect uint32) {
	if c.closed.Load() || c.killed.Load() {
		return
	}
	var ack [chaosAckLen]byte
	ack[0] = chaosAck
	binary.BigEndian.PutUint32(ack[1:], expect)
	c.ep.Isend(ack[:], src, 0)
}

// retransmitLoop resends every unacknowledged message on the schedule's
// cadence. Retransmissions bypass the fault draws — only a message's first
// transmission consumes PRNG verdicts — so the fault log stays exactly
// reproducible while delivery remains guaranteed.
func (c *Chaos) retransmitLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stopRe:
			return
		case <-c.retick.C:
		}
		if c.closed.Load() || c.killed.Load() {
			return
		}
		for j, s := range c.send {
			if s == nil {
				continue
			}
			s.mu.Lock()
			if !s.dark.IsZero() && time.Now().Before(s.dark) {
				s.mu.Unlock()
				continue
			}
			frames := make([][]byte, 0, len(s.window))
			for _, f := range s.window {
				frames = append(frames, f)
			}
			s.mu.Unlock()
			for _, f := range frames {
				if c.closed.Load() || c.killed.Load() {
					return
				}
				c.ep.Isend(f, j, 0)
			}
		}
	}
}

// kill simulates this rank dying mid-send: on a Crasher substrate the real
// connections are torn down with no goodbye; everywhere the local mailbox
// blacks out and the pump and retransmissions stop, so nothing is sent or
// delivered past the kill point.
func (c *Chaos) kill() {
	if !c.killed.CompareAndSwap(false, true) {
		return
	}
	if cr, ok := c.ep.(Crasher); ok {
		cr.Crash()
	}
	c.cancelPending()
	c.mb.fail()
}

func (c *Chaos) cancelPending() {
	c.pendMu.Lock()
	req := c.pending
	c.pendMu.Unlock()
	if req != nil {
		req.Cancel()
	}
}

// Close stops the wrapper — pump, retransmissions, pending timers lapse —
// without closing the underlying endpoint (the caller owns that).
func (c *Chaos) Close() error {
	c.closeOnce.Do(func() {
		c.closed.Store(true)
		close(c.stopRe)
		c.retick.Stop()
		c.cancelPending()
		c.wg.Wait()
		c.mb.fail()
	})
	return nil
}
