package transport

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// chaosPayload derives a deterministic, length-varying payload for message i
// on one link, so delivery checks catch corruption as well as reordering.
func chaosPayload(i int) []byte {
	b := make([]byte, 1+i%61)
	for k := range b {
		b[k] = byte(i + k)
	}
	return b
}

// chaosScript drives one fixed conversation over a fresh 2-rank world: rank
// 0 sends forward messages, rank 1 echoes back count of its own, and both
// sides assert exactly-once in-order delivery. It returns both fault logs.
func chaosScript(t *testing.T, sch Schedule, forward, back int) (string, string) {
	t.Helper()
	l := NewLocal(2)
	c0 := NewChaos(l.Endpoint(0), sch)
	c1 := NewChaos(l.Endpoint(1), sch)
	defer c0.Close()
	defer c1.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < forward; i++ {
			r := c1.Irecv(0, Any)
			r.Wait()
			if r.Canceled() {
				t.Errorf("forward recv %d canceled", i)
				return
			}
			if r.Tag() != i || !bytes.Equal(r.Data(), chaosPayload(i)) {
				t.Errorf("forward message %d: tag %d payload %v", i, r.Tag(), r.Data())
				return
			}
		}
		for i := 0; i < back; i++ {
			c1.Isend(chaosPayload(1000+i), 0, i)
		}
	}()

	for i := 0; i < forward; i++ {
		c0.Isend(chaosPayload(i), 1, i)
	}
	for i := 0; i < back; i++ {
		r := c0.Irecv(1, i)
		r.Wait()
		if r.Canceled() || !bytes.Equal(r.Data(), chaosPayload(1000+i)) {
			t.Fatalf("back message %d: canceled=%v payload %v", i, r.Canceled(), r.Data())
		}
	}
	<-done
	return c0.FaultLog(), c1.FaultLog()
}

// TestChaosDeterministicReplay is the core contract of the harness: the
// same seed and the same per-link send sequence reproduce the same fault
// sequence exactly, byte for byte, drops and delays and severs included —
// whatever the goroutine scheduler, retransmit timers, or ack cadence did
// in between.
func TestChaosDeterministicReplay(t *testing.T) {
	sch := Schedule{
		Seed:               0xC0FFEE,
		Drop:               0.15,
		Duplicate:          0.10,
		DelayP50:           100 * time.Microsecond,
		DelayP95:           500 * time.Microsecond,
		Sever:              []SeverEvent{{Peer: 1, AtFrame: 100, For: 5 * time.Millisecond}},
		RetransmitInterval: 2 * time.Millisecond,
	}
	log0a, log1a := chaosScript(t, sch, 300, 150)
	log0b, log1b := chaosScript(t, sch, 300, 150)
	if log0a != log0b {
		t.Fatalf("rank 0 fault log not reproducible:\nrun A:\n%srun B:\n%s", log0a, log0b)
	}
	if log1a != log1b {
		t.Fatalf("rank 1 fault log not reproducible:\nrun A:\n%srun B:\n%s", log1a, log1b)
	}
	// The schedule must actually have injected faults, or the test proves
	// nothing: drops, a sever, and at least one delay on the busy link.
	for _, mark := range []string{"x", "!", "~"} {
		if !strings.Contains(log0a, mark) {
			t.Errorf("rank 0 fault log has no %q verdict:\n%s", mark, log0a)
		}
	}
	// A different seed must give a different fault sequence (the log is not
	// degenerate).
	sch.Seed = 0xBAD5EED
	log0c, _ := chaosScript(t, sch, 300, 150)
	if log0c == log0a {
		t.Fatal("different seeds produced identical fault logs")
	}
}

// TestChaosExactlyOnceUnderFaults hammers one link with every fault class
// at once — the delivery assertions live in chaosScript: every message
// arrives exactly once, in order, bit-identical, on both directions.
func TestChaosExactlyOnceUnderFaults(t *testing.T) {
	chaosScript(t, Schedule{
		Seed:               7,
		Drop:               0.30,
		Duplicate:          0.20,
		DelayP50:           50 * time.Microsecond,
		DelayP95:           2 * time.Millisecond,
		RetransmitInterval: 2 * time.Millisecond,
	}, 500, 200)
}

// TestChaosSelfSend: messages to the own rank bypass the fault machinery
// entirely (there is no wire to be hostile on).
func TestChaosSelfSend(t *testing.T) {
	l := NewLocal(2)
	c := NewChaos(l.Endpoint(0), Schedule{Seed: 1, Drop: 1.0})
	defer c.Close()
	buf := []byte("to myself")
	c.Isend(buf, 0, 4)
	buf[0] = 'X' // Isend copies
	r := c.Irecv(0, 4)
	r.Wait()
	if string(r.Data()) != "to myself" {
		t.Fatalf("self send through chaos: %q", r.Data())
	}
	if log := c.FaultLog(); strings.ContainsAny(log, "x2~!") {
		t.Fatalf("self send consumed fault verdicts:\n%s", log)
	}
}

// TestChaosConcurrentLinks: fault draws are per-link, so concurrent senders
// to different destinations do not perturb each other's verdict streams.
func TestChaosConcurrentLinks(t *testing.T) {
	const n, msgs = 4, 120
	sch := Schedule{Seed: 99, Drop: 0.1, RetransmitInterval: 2 * time.Millisecond}

	run := func() []string {
		l := NewLocal(n)
		cs := make([]*Chaos, n)
		for r := 0; r < n; r++ {
			cs[r] = NewChaos(l.Endpoint(r), sch)
		}
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					cs[r].Isend(chaosPayload(i), (r+1)%n, i)
				}
				for i := 0; i < msgs; i++ {
					req := cs[r].Irecv((r+n-1)%n, i)
					req.Wait()
					if req.Canceled() || !bytes.Equal(req.Data(), chaosPayload(i)) {
						t.Errorf("rank %d message %d corrupted", r, i)
						return
					}
				}
			}(r)
		}
		wg.Wait()
		logs := make([]string, n)
		for r := 0; r < n; r++ {
			logs[r] = cs[r].FaultLog()
			cs[r].Close()
		}
		return logs
	}

	a, b := run(), run()
	for r := range a {
		if a[r] != b[r] {
			t.Fatalf("rank %d fault log differs across identical concurrent runs:\n%s\nvs\n%s", r, a[r], b[r])
		}
	}
}
