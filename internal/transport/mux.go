package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Mux multiplexes independent jobs onto one underlying Endpoint. Every
// process of a fleet dials its mesh once, wraps the endpoint in a Mux, and
// opens one virtual JobEndpoint per concurrent factorization: sends carry a
// job id in front of the payload, and a pump goroutine demultiplexes
// arrivals into per-job mailboxes. Each JobEndpoint has the full Endpoint
// semantics — matching receives, per-job barriers, per-job stats — so the
// PULSAR runtime runs unchanged over it, and any number of jobs share the
// persistent connections without dial-per-job cost or tag collisions.
//
// The muxed header is [u32 job id][u8 kind]; kind separates data from the
// per-job barrier protocol (which mirrors the TCP transport's centralized
// barrier, rank 0 coordinating). Messages that arrive for a job not yet
// opened are buffered and flushed at Open — the natural race when one rank
// starts a job before its peers heard about it. Messages for a closed job
// are dropped (the dead letters of a canceled run).
//
// A job need not span the whole fleet: OpenOn builds a session over any
// subset of the real ranks, with its own dense virtual rank space — the
// mechanism that lets a degraded fleet keep running jobs on the survivors.
//
// When the underlying endpoint reports peer deaths (FailureObserver, as
// the TCP substrate does), the Mux fans each death out to every open job
// session: the dead member's receives cancel, its barriers depart, and the
// session's own FailureObserver surface carries the cause — so a fleet
// member dying mid-job surfaces as an immediate, attributable error rather
// than the job's deadlock timeout.
type Mux struct {
	ep Endpoint

	// barTotal accumulates every job session's barriers across the mux's
	// whole life — per-job BarrierStats die with their JobEndpoint, so this
	// is the series a long-lived server exports (qrserve_mux_barriers_total).
	barTotal barrierCtrs

	mu        sync.Mutex
	jobs      map[uint32]*JobEndpoint
	pending   map[uint32][]muxMsg
	closedJ   map[uint32]bool // closed ids at/above closedLo, compacted as the watermark advances
	closedLo  uint32          // every id below it is closed or currently open (in jobs)
	closed    bool
	cur       Request       // outstanding pump receive, canceled on Close
	deadPeers map[int]error // real ranks reported dead by the underlying endpoint
	failFns   []func(rank int, err error)

	wg sync.WaitGroup
}

const muxHeaderLen = 5

// Muxed message kinds (the byte after the job id).
const (
	muxData           byte = 0
	muxBarrierEnter   byte = 1
	muxBarrierRelease byte = 2
	muxBarrierAbort   byte = 3
)

type muxMsg struct {
	source, tag int
	kind        byte
	data        []byte
}

var errJobClosed = errors.New("transport: job endpoint closed")

// NewMux wraps ep and starts the demultiplexing pump. The Mux owns the
// endpoint's receive side: all traffic through ep must go through job
// endpoints from here on. Closing the Mux stops the pump and fails every
// open job; the underlying endpoint remains the caller's to close.
func NewMux(ep Endpoint) *Mux {
	m := &Mux{
		ep:        ep,
		jobs:      map[uint32]*JobEndpoint{},
		pending:   map[uint32][]muxMsg{},
		closedJ:   map[uint32]bool{},
		deadPeers: map[int]error{},
	}
	if fo, ok := ep.(FailureObserver); ok {
		fo.OnPeerFailure(m.peerFailed)
	}
	m.wg.Add(1)
	go m.pump()
	return m
}

// peerFailed is the underlying endpoint's death report: record it (so
// sessions opened later start degraded), fan it out to every open job
// session, and notify the Mux's own observers (the service's fleet
// manager).
func (m *Mux) peerFailed(rank int, err error) {
	m.mu.Lock()
	if _, seen := m.deadPeers[rank]; seen {
		m.mu.Unlock()
		return
	}
	m.deadPeers[rank] = err
	jobs := make([]*JobEndpoint, 0, len(m.jobs))
	for _, e := range m.jobs {
		jobs = append(jobs, e)
	}
	fns := append([]func(rank int, err error){}, m.failFns...)
	m.mu.Unlock()
	for _, e := range jobs {
		e.peerFailed(rank, err)
	}
	for _, fn := range fns {
		fn(rank, err)
	}
}

// OnPeerFailure registers a fleet-level observer for peer deaths reported
// by the underlying endpoint; nil unregisters all.
func (m *Mux) OnPeerFailure(fn func(rank int, err error)) {
	m.mu.Lock()
	if fn == nil {
		m.failFns = nil
	} else {
		m.failFns = append(m.failFns, fn)
	}
	m.mu.Unlock()
}

// PeerFailure returns the first fleet-level peer death observed, or nil.
func (m *Mux) PeerFailure() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, err := range m.deadPeers {
		return err
	}
	return nil
}

// DeadPeers returns the real ranks the underlying endpoint has reported
// dead, in ascending order.
func (m *Mux) DeadPeers() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.deadPeers))
	for r := range m.deadPeers {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Open creates the virtual endpoint for job, spanning every rank of the
// underlying endpoint. Opening an already-open or already-closed job id is
// an error: ids identify one job's lifetime.
func (m *Mux) Open(job uint32) (*JobEndpoint, error) {
	all := make([]int, m.ep.Size())
	for i := range all {
		all[i] = i
	}
	return m.OpenOn(job, all)
}

// OpenOn creates the virtual endpoint for job over a subset of the real
// ranks. The session has its own dense rank space: member ranks[i] is
// virtual rank i (ranks are sorted first), Size() is len(ranks), and every
// member must open the job with the same member set. The calling process's
// real rank must be a member. Traffic from non-members is dropped.
func (m *Mux) OpenOn(job uint32, ranks []int) (*JobEndpoint, error) {
	if len(ranks) == 0 {
		return nil, fmt.Errorf("transport: job %d: empty member set", job)
	}
	members := append([]int(nil), ranks...)
	sort.Ints(members)
	size := m.ep.Size()
	vrank := make([]int, size)
	for i := range vrank {
		vrank[i] = -1
	}
	for v, r := range members {
		if r < 0 || r >= size {
			return nil, fmt.Errorf("transport: job %d: member rank %d out of world of %d", job, r, size)
		}
		if vrank[r] != -1 {
			return nil, fmt.Errorf("transport: job %d: duplicate member rank %d", job, r)
		}
		vrank[r] = v
	}
	self := vrank[m.ep.Rank()]
	if self < 0 {
		return nil, fmt.Errorf("transport: job %d: own rank %d not in member set %v", job, m.ep.Rank(), ranks)
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, errClosed
	}
	if _, ok := m.jobs[job]; ok {
		m.mu.Unlock()
		return nil, fmt.Errorf("transport: job %d already open", job)
	}
	if m.closedJ[job] || job < m.closedLo {
		m.mu.Unlock()
		return nil, fmt.Errorf("transport: job %d already closed", job)
	}
	e := &JobEndpoint{
		mux:     m,
		job:     job,
		members: members,
		vrank:   vrank,
		self:    self,
		dead:    map[int]error{},
		mb:      newMailbox(len(members)),
		bar:     newBarrierState(len(members)),
	}
	m.jobs[job] = e
	buffered := m.pending[job]
	delete(m.pending, job)
	deadNow := make(map[int]error, len(m.deadPeers))
	for r, err := range m.deadPeers {
		deadNow[r] = err
	}
	m.mu.Unlock()

	for _, msg := range buffered {
		e.dispatch(msg)
	}
	// A session opened on an already-degraded fleet starts with the dead
	// members departed, exactly as if they died a moment later.
	for r, err := range deadNow {
		e.peerFailed(r, err)
	}
	return e, nil
}

// Close stops the pump and fails every open job endpoint. Pending buffered
// messages are dropped.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	jobs := make([]*JobEndpoint, 0, len(m.jobs))
	for _, e := range m.jobs {
		jobs = append(jobs, e)
	}
	cur := m.cur
	m.mu.Unlock()

	for _, e := range jobs {
		e.Close()
	}
	if cur != nil {
		cur.Cancel()
	}
	m.wg.Wait()
	return nil
}

// pump is the demultiplexer: one wildcard receive at a time on the real
// endpoint, routed by the job id in the muxed header.
func (m *Mux) pump() {
	defer m.wg.Done()
	for {
		req := m.ep.Irecv(Any, Any)
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			req.Cancel()
			return
		}
		m.cur = req
		m.mu.Unlock()
		req.Wait()
		if req.Canceled() {
			m.failAll()
			return
		}
		m.route(req.Source(), req.Tag(), req.Data())
	}
}

// failAll marks every open job's communicator failed — the pump is gone
// (mux closed or the underlying endpoint died), so no receive or barrier
// can ever complete again.
func (m *Mux) failAll() {
	m.mu.Lock()
	m.closed = true
	jobs := make([]*JobEndpoint, 0, len(m.jobs))
	for _, e := range m.jobs {
		jobs = append(jobs, e)
	}
	m.mu.Unlock()
	for _, e := range jobs {
		e.fail()
	}
}

func (m *Mux) route(source, tag int, data []byte) {
	if len(data) < muxHeaderLen {
		return // not a muxed frame; drop
	}
	job := binary.BigEndian.Uint32(data)
	msg := muxMsg{source: source, tag: tag, kind: data[4], data: data[muxHeaderLen:]}
	m.mu.Lock()
	e, open := m.jobs[job]
	if !open {
		if !m.closedJ[job] && job >= m.closedLo && !m.closed {
			m.pending[job] = append(m.pending[job], msg)
		}
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()
	e.dispatch(msg)
}

// Depths reports the mux's occupancy: open job sessions, messages buffered
// for jobs not yet opened, and the total unmatched backlog across the open
// sessions' mailboxes.
// BarrierTotals aggregates the barriers of every job session this mux ever
// carried, including sessions already closed. This is where per-job barrier
// activity is visible on a long-lived server: the root endpoint's
// BarrierStats only counts collectives run directly on it (trace gathers,
// shutdown), not the muxed per-job ones.
func (m *Mux) BarrierTotals() BarrierStats { return m.barTotal.stats() }

func (m *Mux) Depths() (open, pending, backlog int) {
	m.mu.Lock()
	open = len(m.jobs)
	for _, msgs := range m.pending {
		pending += len(msgs)
	}
	jobs := make([]*JobEndpoint, 0, len(m.jobs))
	for _, e := range m.jobs {
		jobs = append(jobs, e)
	}
	m.mu.Unlock()
	for _, e := range jobs {
		backlog += e.mb.depth()
	}
	return open, pending, backlog
}

// compact advances the closed-below watermark. Job ids are allocated
// monotonically, so the ever-growing run of retired ids at the bottom can
// be summarized by one bound instead of one closedJ entry per job for the
// life of the mux; only the (small) set of ids closed out of order above
// the watermark keeps an entry. Ids still open — the long-lived control
// job — are stepped over: they live in m.jobs, which route and Open
// consult before the watermark, and a later Close below the watermark
// needs no entry at all. Callers hold m.mu.
func (m *Mux) compact() {
	for {
		if m.closedJ[m.closedLo] {
			delete(m.closedJ, m.closedLo)
		} else if _, open := m.jobs[m.closedLo]; !open {
			return
		}
		m.closedLo++
	}
}

// JobEndpoint is one job's virtual rank endpoint over a Mux. It implements
// Endpoint; the runtime's proxy and the gather path use it exactly like a
// dedicated communicator. Ranks are virtual: member i of the session's
// (sorted) member set is rank i, whatever its real rank in the fleet.
type JobEndpoint struct {
	mux     *Mux
	job     uint32
	members []int // virtual rank → real rank
	vrank   []int // real rank → virtual rank, -1 for non-members
	self    int   // own virtual rank

	mb  *mailbox
	bar *barrierState

	failMu    sync.Mutex
	dead      map[int]error // virtual rank → death cause
	firstFail error
	failFns   []func(rank int, err error)

	closed    atomic.Bool
	msgs      atomic.Int64
	bytes     atomic.Int64
	recvMsgs  atomic.Int64
	recvBytes atomic.Int64
	barT      barrierCtrs
}

func (e *JobEndpoint) dispatch(msg muxMsg) {
	src := e.vrank[msg.source]
	if src < 0 {
		return // not a member of this session
	}
	switch msg.kind {
	case muxData:
		e.recvMsgs.Add(1)
		e.recvBytes.Add(int64(len(msg.data)))
		e.mb.push(envelope{source: src, tag: msg.tag, data: msg.data})
	case muxBarrierEnter:
		e.bar.handle(src, msg.tag, BarrierEnter)
	case muxBarrierRelease:
		e.bar.handle(src, msg.tag, BarrierRelease)
	case muxBarrierAbort:
		e.bar.handle(src, msg.tag, BarrierAbort)
	}
}

// peerFailed departs one real rank from this session: its receives cancel,
// its barriers stop waiting for it, and the session's failure observers
// hear about it (in virtual rank terms) exactly once.
func (e *JobEndpoint) peerFailed(real int, err error) {
	if real < 0 || real >= len(e.vrank) {
		return
	}
	v := e.vrank[real]
	if v < 0 || e.closed.Load() {
		return
	}
	e.failMu.Lock()
	if _, seen := e.dead[v]; seen {
		e.failMu.Unlock()
		return
	}
	e.dead[v] = err
	if e.firstFail == nil {
		e.firstFail = err
	}
	fns := append([]func(rank int, err error){}, e.failFns...)
	e.failMu.Unlock()
	e.bar.depart(v, fmt.Errorf("transport: job %d member %d (rank %d) is gone: %w", e.job, v, real, err))
	e.mb.depart(v)
	for _, fn := range fns {
		fn(v, err)
	}
}

// OnPeerFailure registers a callback for member deaths within this
// session (virtual ranks); nil unregisters all. Part of FailureObserver.
func (e *JobEndpoint) OnPeerFailure(fn func(rank int, err error)) {
	e.failMu.Lock()
	if fn == nil {
		e.failFns = nil
	} else {
		e.failFns = append(e.failFns, fn)
	}
	e.failMu.Unlock()
}

// PeerFailure returns the first member death observed in this session, or
// nil while every member is healthy.
func (e *JobEndpoint) PeerFailure() error {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	return e.firstFail
}

func (e *JobEndpoint) fail() {
	e.bar.fail(errClosed)
	e.mb.fail()
}

// Job returns the job id this endpoint serves.
func (e *JobEndpoint) Job() uint32 { return e.job }

// Members returns the session's member set: real rank Members()[i] is
// virtual rank i.
func (e *JobEndpoint) Members() []int {
	return append([]int(nil), e.members...)
}

func (e *JobEndpoint) Rank() int { return e.self }
func (e *JobEndpoint) Size() int { return len(e.members) }

func (e *JobEndpoint) OnArrival(fn func()) { e.mb.setNotify(fn) }

func (e *JobEndpoint) Stats() (messages, bytes int64) {
	return e.msgs.Load(), e.bytes.Load()
}

// IOStats returns this job session's traffic in both directions.
func (e *JobEndpoint) IOStats() (sentMsgs, sentBytes, recvMsgs, recvBytes int64) {
	return e.msgs.Load(), e.bytes.Load(), e.recvMsgs.Load(), e.recvBytes.Load()
}

// Backlog returns the number of delivered-but-unmatched messages sitting in
// this job's mailbox — the channel occupancy of the session.
func (e *JobEndpoint) Backlog() int { return e.mb.depth() }

// BarrierStats reports how many of this job's barriers completed and the
// total wait.
func (e *JobEndpoint) BarrierStats() BarrierStats { return e.barT.stats() }

// send wraps payload in the muxed header and ships it on the real endpoint,
// translating the virtual destination to its real rank.
func (e *JobEndpoint) send(kind byte, data []byte, dest, tag int) {
	buf := make([]byte, muxHeaderLen+len(data))
	binary.BigEndian.PutUint32(buf, e.job)
	buf[4] = kind
	copy(buf[muxHeaderLen:], data)
	e.mux.ep.Isend(buf, e.members[dest], tag)
}

// Isend sends data to dest with the given tag within this job. Payloads are
// copied into the muxed frame before return, preserving the eager-send
// contract. Sends on a closed job endpoint are dropped (a canceled job's
// stragglers).
func (e *JobEndpoint) Isend(data []byte, dest, tag int) Request {
	if dest < 0 || dest >= len(e.members) {
		panic(fmt.Sprintf("transport: job %d Isend to rank %d out of session of %d", e.job, dest, len(e.members)))
	}
	if !e.closed.Load() {
		e.msgs.Add(1)
		e.bytes.Add(int64(len(data)))
		e.send(muxData, data, dest, tag)
	}
	return &netRequest{done: true, source: dest, tag: tag}
}

// Irecv posts a receive for (source|Any, tag|Any) within this job.
func (e *JobEndpoint) Irecv(source, tag int) Request {
	req := &netRequest{isRecv: true, source: source, tag: tag, mb: e.mb}
	e.mb.post(req)
	return req
}

// Barrier blocks until every rank has entered this job's barrier, using the
// same centralized generation protocol as the TCP transport but carried in
// muxed control messages: every rank reports to rank 0, which releases all.
// The per-job generation counters line up because Barrier is collective
// within the job. Like the TCP barrier it is departure-aware: a member
// reported dead fails the barriers it never entered, with the death as the
// cause, instead of hanging until a timeout.
func (e *JobEndpoint) Barrier() error {
	start := time.Now()
	err := e.barrier()
	e.barT.observe(start)
	e.mux.barTotal.observe(start)
	return err
}

func (e *JobEndpoint) barrier() error {
	b := e.bar
	b.mu.Lock()
	if b.err != nil {
		defer b.mu.Unlock()
		return b.err
	}
	gen := b.gen
	b.gen++
	b.mu.Unlock()
	size := e.Size()
	if size == 1 {
		return nil
	}

	if e.self == 0 {
		b.mu.Lock()
		for len(b.entered[gen]) < size-1 && b.err == nil && b.missingLocked(gen) < 0 {
			b.cond.Wait()
		}
		// A completed generation wins over a concurrent failure or
		// departure (a member may have entered just before dying).
		var err error
		if len(b.entered[gen]) < size-1 {
			if b.err != nil {
				err = b.err
			} else if j := b.missingLocked(gen); j >= 0 {
				err = fmt.Errorf("transport: barrier cannot complete: %w", b.departErr[j])
			}
		}
		delete(b.entered, gen)
		b.mu.Unlock()
		if err != nil {
			// The generation can never complete; tell the members already
			// waiting in it so they fail alongside rank 0 instead of
			// holding out for a release that will not come.
			for j := 1; j < size; j++ {
				e.send(muxBarrierAbort, nil, j, gen)
			}
			return err
		}
		for j := 1; j < size; j++ {
			e.send(muxBarrierRelease, nil, j, gen)
		}
		return nil
	}

	e.send(muxBarrierEnter, nil, 0, gen)
	b.mu.Lock()
	for !b.released[gen] && !b.aborted[gen] && b.err == nil && !b.departed[0] {
		b.cond.Wait()
	}
	// A release already received wins over a concurrent failure or abort.
	var err error
	if !b.released[gen] {
		switch {
		case b.err != nil:
			err = b.err
		case b.departed[0]:
			err = fmt.Errorf("transport: barrier cannot complete: %w", b.departErr[0])
		case b.departedLocked() >= 0:
			err = fmt.Errorf("transport: barrier cannot complete: %w", b.departErr[b.departedLocked()])
		default:
			err = fmt.Errorf("transport: barrier aborted by rank 0: a member departed before entering")
		}
	}
	delete(b.released, gen)
	delete(b.aborted, gen)
	b.mu.Unlock()
	return err
}

// Close retires the job id: posted receives and barrier waits are failed,
// and later arrivals for this job are dropped by the pump. The underlying
// endpoint is untouched.
func (e *JobEndpoint) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	m := e.mux
	m.mu.Lock()
	delete(m.jobs, e.job)
	delete(m.pending, e.job)
	if e.job >= m.closedLo {
		m.closedJ[e.job] = true
		m.compact()
	}
	m.mu.Unlock()
	e.bar.fail(errJobClosed)
	e.mb.fail()
	return nil
}
