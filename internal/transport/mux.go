package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Mux multiplexes independent jobs onto one underlying Endpoint. Every
// process of a fleet dials its mesh once, wraps the endpoint in a Mux, and
// opens one virtual JobEndpoint per concurrent factorization: sends carry a
// job id in front of the payload, and a pump goroutine demultiplexes
// arrivals into per-job mailboxes. Each JobEndpoint has the full Endpoint
// semantics — matching receives, per-job barriers, per-job stats — so the
// PULSAR runtime runs unchanged over it, and any number of jobs share the
// persistent connections without dial-per-job cost or tag collisions.
//
// The muxed header is [u32 job id][u8 kind]; kind separates data from the
// per-job barrier protocol (which mirrors the TCP transport's centralized
// barrier, rank 0 coordinating). Messages that arrive for a job not yet
// opened are buffered and flushed at Open — the natural race when one rank
// starts a job before its peers heard about it. Messages for a closed job
// are dropped (the dead letters of a canceled run).
//
// Limitation: a Mux cannot observe the departure of a single peer (the
// underlying wildcard receive outlives it), so a fleet member dying mid-job
// surfaces as the job's deadlock timeout, not an immediate error. Process
// supervision handles fleet membership; the Mux handles job traffic.
type Mux struct {
	ep Endpoint

	mu       sync.Mutex
	jobs     map[uint32]*JobEndpoint
	pending  map[uint32][]muxMsg
	closedJ  map[uint32]bool // closed ids at/above closedLo, compacted as the watermark advances
	closedLo uint32          // every id below it is closed or currently open (in jobs)
	closed   bool
	cur      Request // outstanding pump receive, canceled on Close

	wg sync.WaitGroup
}

const muxHeaderLen = 5

// Muxed message kinds (the byte after the job id).
const (
	muxData           byte = 0
	muxBarrierEnter   byte = 1
	muxBarrierRelease byte = 2
)

type muxMsg struct {
	source, tag int
	kind        byte
	data        []byte
}

var errJobClosed = errors.New("transport: job endpoint closed")

// NewMux wraps ep and starts the demultiplexing pump. The Mux owns the
// endpoint's receive side: all traffic through ep must go through job
// endpoints from here on. Closing the Mux stops the pump and fails every
// open job; the underlying endpoint remains the caller's to close.
func NewMux(ep Endpoint) *Mux {
	m := &Mux{
		ep:      ep,
		jobs:    map[uint32]*JobEndpoint{},
		pending: map[uint32][]muxMsg{},
		closedJ: map[uint32]bool{},
	}
	m.wg.Add(1)
	go m.pump()
	return m
}

// Open creates the virtual endpoint for job. Opening an already-open or
// already-closed job id is an error: ids identify one job's lifetime.
func (m *Mux) Open(job uint32) (*JobEndpoint, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errClosed
	}
	if _, ok := m.jobs[job]; ok {
		return nil, fmt.Errorf("transport: job %d already open", job)
	}
	if m.closedJ[job] || job < m.closedLo {
		return nil, fmt.Errorf("transport: job %d already closed", job)
	}
	e := &JobEndpoint{
		mux: m,
		job: job,
		mb:  newMailbox(m.ep.Size()),
		bar: newBarrierState(m.ep.Size()),
	}
	m.jobs[job] = e
	for _, msg := range m.pending[job] {
		e.dispatch(msg)
	}
	delete(m.pending, job)
	return e, nil
}

// Close stops the pump and fails every open job endpoint. Pending buffered
// messages are dropped.
func (m *Mux) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	jobs := make([]*JobEndpoint, 0, len(m.jobs))
	for _, e := range m.jobs {
		jobs = append(jobs, e)
	}
	cur := m.cur
	m.mu.Unlock()

	for _, e := range jobs {
		e.Close()
	}
	if cur != nil {
		cur.Cancel()
	}
	m.wg.Wait()
	return nil
}

// pump is the demultiplexer: one wildcard receive at a time on the real
// endpoint, routed by the job id in the muxed header.
func (m *Mux) pump() {
	defer m.wg.Done()
	for {
		req := m.ep.Irecv(Any, Any)
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			req.Cancel()
			return
		}
		m.cur = req
		m.mu.Unlock()
		req.Wait()
		if req.Canceled() {
			m.failAll()
			return
		}
		m.route(req.Source(), req.Tag(), req.Data())
	}
}

// failAll marks every open job's communicator failed — the pump is gone
// (mux closed or the underlying endpoint died), so no receive or barrier
// can ever complete again.
func (m *Mux) failAll() {
	m.mu.Lock()
	m.closed = true
	jobs := make([]*JobEndpoint, 0, len(m.jobs))
	for _, e := range m.jobs {
		jobs = append(jobs, e)
	}
	m.mu.Unlock()
	for _, e := range jobs {
		e.fail()
	}
}

func (m *Mux) route(source, tag int, data []byte) {
	if len(data) < muxHeaderLen {
		return // not a muxed frame; drop
	}
	job := binary.BigEndian.Uint32(data)
	msg := muxMsg{source: source, tag: tag, kind: data[4], data: data[muxHeaderLen:]}
	m.mu.Lock()
	e, open := m.jobs[job]
	if !open {
		if !m.closedJ[job] && job >= m.closedLo && !m.closed {
			m.pending[job] = append(m.pending[job], msg)
		}
		m.mu.Unlock()
		return
	}
	m.mu.Unlock()
	e.dispatch(msg)
}

// Depths reports the mux's occupancy: open job sessions, messages buffered
// for jobs not yet opened, and the total unmatched backlog across the open
// sessions' mailboxes.
func (m *Mux) Depths() (open, pending, backlog int) {
	m.mu.Lock()
	open = len(m.jobs)
	for _, msgs := range m.pending {
		pending += len(msgs)
	}
	jobs := make([]*JobEndpoint, 0, len(m.jobs))
	for _, e := range m.jobs {
		jobs = append(jobs, e)
	}
	m.mu.Unlock()
	for _, e := range jobs {
		backlog += e.mb.depth()
	}
	return open, pending, backlog
}

// compact advances the closed-below watermark. Job ids are allocated
// monotonically, so the ever-growing run of retired ids at the bottom can
// be summarized by one bound instead of one closedJ entry per job for the
// life of the mux; only the (small) set of ids closed out of order above
// the watermark keeps an entry. Ids still open — the long-lived control
// job — are stepped over: they live in m.jobs, which route and Open
// consult before the watermark, and a later Close below the watermark
// needs no entry at all. Callers hold m.mu.
func (m *Mux) compact() {
	for {
		if m.closedJ[m.closedLo] {
			delete(m.closedJ, m.closedLo)
		} else if _, open := m.jobs[m.closedLo]; !open {
			return
		}
		m.closedLo++
	}
}

// JobEndpoint is one job's virtual rank endpoint over a Mux. It implements
// Endpoint; the runtime's proxy and the gather path use it exactly like a
// dedicated communicator.
type JobEndpoint struct {
	mux *Mux
	job uint32
	mb  *mailbox
	bar *barrierState

	closed    atomic.Bool
	msgs      atomic.Int64
	bytes     atomic.Int64
	recvMsgs  atomic.Int64
	recvBytes atomic.Int64
	barT      barrierCtrs
}

func (e *JobEndpoint) dispatch(msg muxMsg) {
	switch msg.kind {
	case muxData:
		e.recvMsgs.Add(1)
		e.recvBytes.Add(int64(len(msg.data)))
		e.mb.push(envelope{source: msg.source, tag: msg.tag, data: msg.data})
	case muxBarrierEnter:
		e.bar.handle(msg.source, msg.tag, BarrierEnter)
	case muxBarrierRelease:
		e.bar.handle(msg.source, msg.tag, BarrierRelease)
	}
}

func (e *JobEndpoint) fail() {
	e.bar.fail(errClosed)
	e.mb.fail()
}

// Job returns the job id this endpoint serves.
func (e *JobEndpoint) Job() uint32 { return e.job }

func (e *JobEndpoint) Rank() int { return e.mux.ep.Rank() }
func (e *JobEndpoint) Size() int { return e.mux.ep.Size() }

func (e *JobEndpoint) OnArrival(fn func()) { e.mb.setNotify(fn) }

func (e *JobEndpoint) Stats() (messages, bytes int64) {
	return e.msgs.Load(), e.bytes.Load()
}

// IOStats returns this job session's traffic in both directions.
func (e *JobEndpoint) IOStats() (sentMsgs, sentBytes, recvMsgs, recvBytes int64) {
	return e.msgs.Load(), e.bytes.Load(), e.recvMsgs.Load(), e.recvBytes.Load()
}

// Backlog returns the number of delivered-but-unmatched messages sitting in
// this job's mailbox — the channel occupancy of the session.
func (e *JobEndpoint) Backlog() int { return e.mb.depth() }

// BarrierStats reports how many of this job's barriers completed and the
// total wait.
func (e *JobEndpoint) BarrierStats() BarrierStats { return e.barT.stats() }

// send wraps payload in the muxed header and ships it on the real endpoint.
func (e *JobEndpoint) send(kind byte, data []byte, dest, tag int) {
	buf := make([]byte, muxHeaderLen+len(data))
	binary.BigEndian.PutUint32(buf, e.job)
	buf[4] = kind
	copy(buf[muxHeaderLen:], data)
	e.mux.ep.Isend(buf, dest, tag)
}

// Isend sends data to dest with the given tag within this job. Payloads are
// copied into the muxed frame before return, preserving the eager-send
// contract. Sends on a closed job endpoint are dropped (a canceled job's
// stragglers).
func (e *JobEndpoint) Isend(data []byte, dest, tag int) Request {
	if !e.closed.Load() {
		e.msgs.Add(1)
		e.bytes.Add(int64(len(data)))
		e.send(muxData, data, dest, tag)
	}
	return &netRequest{done: true, source: dest, tag: tag}
}

// Irecv posts a receive for (source|Any, tag|Any) within this job.
func (e *JobEndpoint) Irecv(source, tag int) Request {
	req := &netRequest{isRecv: true, source: source, tag: tag, mb: e.mb}
	e.mb.post(req)
	return req
}

// Barrier blocks until every rank has entered this job's barrier, using the
// same centralized generation protocol as the TCP transport but carried in
// muxed control messages: every rank reports to rank 0, which releases all.
// The per-job generation counters line up because Barrier is collective
// within the job.
func (e *JobEndpoint) Barrier() error {
	start := time.Now()
	err := e.barrier()
	e.barT.observe(start)
	return err
}

func (e *JobEndpoint) barrier() error {
	b := e.bar
	b.mu.Lock()
	if b.err != nil {
		defer b.mu.Unlock()
		return b.err
	}
	gen := b.gen
	b.gen++
	b.mu.Unlock()
	size := e.Size()
	if size == 1 {
		return nil
	}

	if e.Rank() == 0 {
		b.mu.Lock()
		for len(b.entered[gen]) < size-1 && b.err == nil {
			b.cond.Wait()
		}
		var err error
		if len(b.entered[gen]) < size-1 {
			err = b.err
		}
		delete(b.entered, gen)
		b.mu.Unlock()
		if err != nil {
			return err
		}
		for j := 1; j < size; j++ {
			e.send(muxBarrierRelease, nil, j, gen)
		}
		return nil
	}

	e.send(muxBarrierEnter, nil, 0, gen)
	b.mu.Lock()
	for !b.released[gen] && b.err == nil {
		b.cond.Wait()
	}
	var err error
	if !b.released[gen] {
		err = b.err
	}
	delete(b.released, gen)
	b.mu.Unlock()
	return err
}

// Close retires the job id: posted receives and barrier waits are failed,
// and later arrivals for this job are dropped by the pump. The underlying
// endpoint is untouched.
func (e *JobEndpoint) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	m := e.mux
	m.mu.Lock()
	delete(m.jobs, e.job)
	delete(m.pending, e.job)
	if e.job >= m.closedLo {
		m.closedJ[e.job] = true
		m.compact()
	}
	m.mu.Unlock()
	e.bar.fail(errJobClosed)
	e.mb.fail()
	return nil
}
