package transport

import (
	"sync"
	"testing"
)

// TestLocalEndpointSemantics drives the in-process implementation through
// the same Endpoint surface the TCP tests use: the two substrates must be
// interchangeable behind the interface.
func TestLocalEndpointSemantics(t *testing.T) {
	l := NewLocal(3)
	if l.Size() != 3 {
		t.Fatalf("size %d", l.Size())
	}
	e0, e1 := l.Endpoint(0), l.Endpoint(1)
	if e0.Rank() != 0 || e1.Rank() != 1 || e0.Size() != 3 {
		t.Fatalf("rank/size wiring wrong")
	}

	buf := []byte("abc")
	s := e0.Isend(buf, 1, 5)
	buf[0] = 'X' // payload must have been copied
	if !s.Test() {
		t.Fatal("send not eagerly complete")
	}
	r := e1.Irecv(Any, Any)
	r.Wait()
	if string(r.Data()) != "abc" || r.Source() != 0 || r.Tag() != 5 || r.GetCount() != 3 {
		t.Fatalf("recv %q src=%d tag=%d n=%d", r.Data(), r.Source(), r.Tag(), r.GetCount())
	}

	// Cancel of an unmatched posted receive.
	r2 := e1.Irecv(2, 9)
	if !r2.Cancel() || !r2.Canceled() {
		t.Fatal("cancel failed")
	}

	// Stats are per-endpoint, counted at the transport layer.
	if m, b := e0.Stats(); m != 1 || b != 3 {
		t.Fatalf("e0 stats %d/%d, want 1/3", m, b)
	}
	if m, b := e1.Stats(); m != 0 || b != 0 {
		t.Fatalf("e1 stats %d/%d, want 0/0", m, b)
	}

	// Barrier across all three ranks.
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := l.Endpoint(i).Barrier(); err != nil {
				t.Errorf("barrier rank %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if err := e0.Close(); err != nil {
		t.Fatal(err)
	}
}
