package transport

import (
	"testing"
	"time"
)

func linkFor(t *testing.T, stats []LinkStats, peer int) LinkStats {
	t.Helper()
	for _, l := range stats {
		if l.Peer == peer {
			return l
		}
	}
	t.Fatalf("no stats for peer %d in %+v", peer, stats)
	return LinkStats{}
}

// The TCP endpoint's per-link counters must account for every frame and
// payload byte in both directions, self-sends included.
func TestTCPLinkStats(t *testing.T) {
	eps := newTCPMesh(t, 2)
	lr0 := eps[0].(LinkReporter)
	lr1 := eps[1].(LinkReporter)

	payload := []byte("telemetry payload")
	eps[0].Isend(payload, 1, 3)
	r := eps[1].Irecv(0, 3)
	r.Wait()
	if r.Canceled() {
		t.Fatal("recv canceled")
	}

	s01 := linkFor(t, lr0.Links(), 1)
	if s01.SentFrames != 1 || s01.SentBytes != int64(len(payload)) {
		t.Fatalf("rank 0 -> 1: %+v", s01)
	}
	// The receiver's counter is bumped in its read loop, which runs ahead of
	// delivery; after a completed Irecv it must already account the frame.
	s10 := linkFor(t, lr1.Links(), 0)
	if s10.RecvFrames != 1 || s10.RecvBytes != int64(len(payload)) {
		t.Fatalf("rank 1 <- 0: %+v", s10)
	}

	// Self-sends credit both directions of the own-rank link.
	eps[0].Isend([]byte("self"), 0, 4)
	rs := eps[0].Irecv(0, 4)
	rs.Wait()
	self := linkFor(t, lr0.Links(), 0)
	if self.SentFrames != 1 || self.RecvFrames != 1 || self.SentBytes != 4 || self.RecvBytes != 4 {
		t.Fatalf("self link: %+v", self)
	}
}

// Barriers must be counted and timed on every rank.
func TestTCPBarrierStats(t *testing.T) {
	eps := newTCPMesh(t, 3)
	done := make(chan error, len(eps))
	for _, ep := range eps {
		go func(ep Endpoint) { done <- ep.Barrier() }(ep)
	}
	for range eps {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	for i, ep := range eps {
		bs := ep.(BarrierReporter).BarrierStats()
		if bs.Count != 1 {
			t.Fatalf("rank %d: %d barriers", i, bs.Count)
		}
		if bs.Wait <= 0 {
			t.Fatalf("rank %d: barrier wait %v", i, bs.Wait)
		}
	}
}

// The in-process Local transport keeps the same counters; delivery is
// immediate so the receive side is credited at send time.
func TestLocalLinkStats(t *testing.T) {
	l := NewLocal(2)
	e0, e1 := l.Endpoint(0), l.Endpoint(1)
	e0.Isend(make([]byte, 100), 1, 9)
	r := e1.Irecv(0, 9)
	r.Wait()

	s01 := linkFor(t, e0.(LinkReporter).Links(), 1)
	if s01.SentFrames != 1 || s01.SentBytes != 100 {
		t.Fatalf("local 0 -> 1: %+v", s01)
	}
	s10 := linkFor(t, e1.(LinkReporter).Links(), 0)
	if s10.RecvFrames != 1 || s10.RecvBytes != 100 {
		t.Fatalf("local 1 <- 0: %+v", s10)
	}

	done := make(chan error, 2)
	go func() { done <- e0.Barrier() }()
	go func() { done <- e1.Barrier() }()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if bs := e0.(BarrierReporter).BarrierStats(); bs.Count != 1 {
		t.Fatalf("local barrier stats: %+v", bs)
	}
}

// Mux.Depths reflects open channels, pre-open pending buffers, and mailbox
// backlog; JobEndpoint.IOStats and Backlog account per-job traffic.
func TestMuxDepthsAndIOStats(t *testing.T) {
	m0, m1 := muxPair(t)
	e0, err := m0.Open(1)
	if err != nil {
		t.Fatal(err)
	}

	// Send into a job rank 1 has not opened: parked in m1's pending map.
	e0.Isend([]byte("early"), 1, 5)
	waitFor(t, func() bool {
		_, pending, _ := m1.Depths()
		return pending == 1
	}, "pending message never arrived")
	if open, _, backlog := m1.Depths(); open != 0 || backlog != 0 {
		t.Fatalf("before open: open=%d backlog=%d", open, backlog)
	}

	e1, err := m1.Open(1)
	if err != nil {
		t.Fatal(err)
	}
	// Opening drains pending into the mailbox backlog.
	waitFor(t, func() bool {
		open, pending, backlog := m1.Depths()
		return open == 1 && pending == 0 && backlog == 1
	}, "pending did not drain into the mailbox")

	r := e1.Irecv(0, 5)
	r.Wait()
	if _, _, backlog := m1.Depths(); backlog != 0 {
		t.Fatalf("backlog after receive: %d", backlog)
	}
	if got := e1.Backlog(); got != 0 {
		t.Fatalf("job backlog = %d", got)
	}

	sm, sb, rm, rb := e0.IOStats()
	if sm != 1 || sb != 5 || rm != 0 || rb != 0 {
		t.Fatalf("sender IOStats = %d %d %d %d", sm, sb, rm, rb)
	}
	sm, sb, rm, rb = e1.IOStats()
	if sm != 0 || sb != 0 || rm != 1 || rb != 5 {
		t.Fatalf("receiver IOStats = %d %d %d %d", sm, sb, rm, rb)
	}

	// Per-job barrier stats live on the JobEndpoint.
	done := make(chan error, 2)
	go func() { done <- e0.Barrier() }()
	go func() { done <- e1.Barrier() }()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if bs := e0.BarrierStats(); bs.Count != 1 {
		t.Fatalf("job barrier stats: %+v", bs)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}
