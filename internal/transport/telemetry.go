package transport

import (
	"sync/atomic"
	"time"
)

// LinkStats is one peer link's traffic counters, as seen from this rank:
// frames/bytes sent to and received from that peer, and the current depth
// of the outbound queue (0 on substrates that send synchronously).
type LinkStats struct {
	Peer                  int
	SentFrames, SentBytes int64
	RecvFrames, RecvBytes int64
	QueueDepth            int
}

// LinkReporter is implemented by endpoints that keep per-peer counters.
type LinkReporter interface {
	// Links returns one entry per rank, own rank included (its counters
	// cover self-sends).
	Links() []LinkStats
}

// BarrierStats aggregates an endpoint's collective barriers: how many
// completed and the total time spent waiting in them.
type BarrierStats struct {
	Count int64
	Wait  time.Duration
}

// BarrierReporter is implemented by endpoints that time their barriers.
type BarrierReporter interface {
	BarrierStats() BarrierStats
}

// linkCtrs is the atomic backing of one LinkStats entry.
type linkCtrs struct {
	sentFrames, sentBytes atomic.Int64
	recvFrames, recvBytes atomic.Int64
}

func (c *linkCtrs) snapshot(peer, depth int) LinkStats {
	return LinkStats{
		Peer:       peer,
		SentFrames: c.sentFrames.Load(), SentBytes: c.sentBytes.Load(),
		RecvFrames: c.recvFrames.Load(), RecvBytes: c.recvBytes.Load(),
		QueueDepth: depth,
	}
}

// barrierCtrs times collective barriers for BarrierStats.
type barrierCtrs struct {
	count atomic.Int64
	nanos atomic.Int64
}

func (c *barrierCtrs) observe(start time.Time) {
	c.count.Add(1)
	c.nanos.Add(time.Since(start).Nanoseconds())
}

func (c *barrierCtrs) stats() BarrierStats {
	return BarrierStats{Count: c.count.Load(), Wait: time.Duration(c.nanos.Load())}
}
