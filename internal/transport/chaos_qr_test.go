package transport_test

// End-to-end chaos tests: a full tree-based QR factorization running over a
// fault-injecting transport must produce bit-identical results to the
// sequential oracle — the ARQ layer makes drops, delays, duplicates and a
// mid-run link sever invisible to the algorithm. This lives in an external
// test package so it can import internal/qr without a cycle.

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"pulsarqr/internal/matrix"
	"pulsarqr/internal/qr"
	"pulsarqr/internal/transport"
)

// chaosQRInputs mirrors the qr package's distributed-test inputs: every
// rank re-derives identical matrices from the same seed.
func chaosQRInputs() (d, b *matrix.Mat, o qr.Options) {
	rng := rand.New(rand.NewSource(42))
	d = matrix.NewRand(61, 17, rng)
	b = matrix.NewRand(61, 3, rng)
	o = qr.Options{NB: 8, IB: 4, Tree: qr.HierarchicalTree, H: 3}
	return d, b, o
}

func chaosQROracle(t *testing.T) *qr.Factorization {
	t.Helper()
	d, b, o := chaosQRInputs()
	seq, err := qr.Factorize(matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB), o)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// assertMatchesOracle checks the distributed result elementwise against the
// sequential factorization: identical goroutine-count-independent tile
// contents, not merely a small residual.
func assertMatchesOracle(t *testing.T, seq, got *qr.Factorization) {
	t.Helper()
	if got == nil {
		t.Fatal("rank 0 returned no factorization")
	}
	if d := matrix.MaxAbsDiff(seq.A.ToDense(), got.A.ToDense()); d != 0 {
		t.Fatalf("factored tiles differ from oracle by %v", d)
	}
	if (seq.QTB == nil) != (got.QTB == nil) {
		t.Fatal("QTB presence differs from oracle")
	}
	if seq.QTB != nil {
		if d := matrix.MaxAbsDiff(seq.QTB.ToDense(), got.QTB.ToDense()); d != 0 {
			t.Fatalf("Q^T B differs from oracle by %v", d)
		}
	}
}

// runChaosFactorization runs FactorizeVSADist on every endpoint concurrently
// and returns rank 0's result; any rank's error fails the test.
func runChaosFactorization(t *testing.T, eps []transport.Endpoint) *qr.Factorization {
	t.Helper()
	d, b, o := chaosQRInputs()
	results := make([]*qr.Factorization, len(eps))
	errs := make([]error, len(eps))
	var wg sync.WaitGroup
	for r := range eps {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			results[r], errs[r] = qr.FactorizeVSADist(
				matrix.FromDense(d, o.NB), matrix.FromDense(b, o.NB),
				o, qr.RunConfig{Threads: 2}, eps[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return results[0]
}

// chaosTCPMesh dials a fully-connected in-process TCP mesh with the given
// resilience knobs. (The transport package's own mesh helpers live in its
// internal test files and are not visible from this external package.)
func chaosTCPMesh(t *testing.T, n int, mod func(*transport.TCPConfig)) []transport.Endpoint {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		peers[i] = ln.Addr().String()
	}
	eps := make([]transport.Endpoint, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cfg := transport.TCPConfig{
				Rank:              i,
				Peers:             peers,
				Listener:          lns[i],
				RendezvousTimeout: 10 * time.Second,
			}
			if mod != nil {
				mod(&cfg)
			}
			eps[i], errs[i] = transport.DialTCP(cfg)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", i, err)
		}
	}
	return eps
}

// TestChaosFactorizationMatchesOracle runs the full distributed QR through
// chaos wrappers injecting 1% frame drop plus delays on the in-process
// transport; the result must match the sequential oracle elementwise.
func TestChaosFactorizationMatchesOracle(t *testing.T) {
	seq := chaosQROracle(t)
	const ranks = 3
	sch := transport.Schedule{
		Seed:               0x9121,
		Drop:               0.01,
		DelayP50:           200 * time.Microsecond,
		DelayP95:           time.Millisecond,
		RetransmitInterval: 5 * time.Millisecond,
	}
	l := transport.NewLocal(ranks)
	eps := make([]transport.Endpoint, ranks)
	for r := 0; r < ranks; r++ {
		eps[r] = transport.NewChaos(l.Endpoint(r), sch)
	}
	got := runChaosFactorization(t, eps)
	for _, ep := range eps {
		ep.Close()
	}
	assertMatchesOracle(t, seq, got)
}

// TestChaosTCPFactorizationMatchesOracle is the headline resilience check
// (and the `make chaos-smoke` target): a factorization over real TCP with
// seeded chaos — 1% drop, 5ms p95 delay, and one mid-run link sever that
// the reconnect layer must repair — completes and matches the sequential
// oracle elementwise, deterministically across repeated runs.
func TestChaosTCPFactorizationMatchesOracle(t *testing.T) {
	seq := chaosQROracle(t)
	runs := 10
	if testing.Short() {
		runs = 2
	}
	for run := 0; run < runs; run++ {
		eps := chaosTCPMesh(t, 2, func(cfg *transport.TCPConfig) {
			cfg.Reconnect = 2 * time.Second
			cfg.ReconnectBackoff = 2 * time.Millisecond
		})
		sch := transport.Schedule{
			Seed:               0xD15EA5E,
			Drop:               0.01,
			DelayP50:           200 * time.Microsecond,
			DelayP95:           5 * time.Millisecond,
			RetransmitInterval: 5 * time.Millisecond,
		}
		chaos := make([]transport.Endpoint, 2)
		for r := range chaos {
			rsch := sch
			if r == 0 {
				// One mid-run sever of the 0->1 link: the TCP substrate
				// implements LinkSeverer, so this cuts the real sockets and
				// exercises redial + unacked-window resend underneath the ARQ.
				rsch.Sever = []transport.SeverEvent{{Peer: 1, AtFrame: 30}}
			}
			chaos[r] = transport.NewChaos(eps[r], rsch)
		}
		got := runChaosFactorization(t, chaos)
		for r := range chaos {
			chaos[r].Close()
			eps[r].Close()
		}
		assertMatchesOracle(t, seq, got)
	}
}

// TestChaosTCPKillRankYieldsPeerDeath: a chaos-scheduled rank kill at frame
// N crashes the real TCP endpoint, and the surviving rank's failure
// observer renders a PeerDeathError naming the dead rank.
func TestChaosTCPKillRankYieldsPeerDeath(t *testing.T) {
	eps := chaosTCPMesh(t, 2, func(cfg *transport.TCPConfig) {
		cfg.Reconnect = 300 * time.Millisecond
		cfg.ReconnectBackoff = 2 * time.Millisecond
	})
	sch0 := transport.Schedule{Seed: 3}
	sch1 := transport.Schedule{Seed: 3, KillAtFrame: 20}
	c0 := transport.NewChaos(eps[0], sch0)
	c1 := transport.NewChaos(eps[1], sch1)
	defer func() {
		c0.Close()
		c1.Close()
		eps[0].Close()
		eps[1].Close()
	}()

	failed := make(chan error, 4)
	c0.OnPeerFailure(func(rank int, err error) { failed <- err })

	go func() {
		for i := 0; i < 100; i++ {
			c1.Isend([]byte{byte(i)}, 0, i)
		}
	}()

	select {
	case err := <-failed:
		var pde *transport.PeerDeathError
		if !errors.As(err, &pde) || pde.Rank != 1 {
			t.Fatalf("failure %v, want PeerDeathError for rank 1", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("kill-at-frame never produced a dead-peer verdict on the survivor")
	}
}
