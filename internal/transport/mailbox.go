package transport

import "sync"

// mailbox implements MPI receive matching for the TCP endpoint: arrived,
// unmatched messages wait in an inbox; posted, unmatched receives wait in a
// queue; both are FIFO, so messages between a given pair of ranks are
// non-overtaking with respect to matching receives — the same rules
// internal/mpi enforces for the in-process substrate.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	inbox  []envelope
	recvs  []*netRequest
	notify func()
	failed bool
	gone   []bool // ranks that departed (connection ended): sends from them can never arrive
	nGone  int
	size   int
}

type envelope struct {
	source, tag int
	data        []byte
}

func newMailbox(size int) *mailbox {
	mb := &mailbox{gone: make([]bool, size), size: size}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// depth returns the number of delivered messages no receive has matched yet.
func (mb *mailbox) depth() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.inbox)
}

func (mb *mailbox) setNotify(fn func()) {
	mb.mu.Lock()
	mb.notify = fn
	mb.mu.Unlock()
}

// push delivers one arrived message, completing the oldest matching posted
// receive or parking the message in the inbox.
func (mb *mailbox) push(env envelope) {
	mb.mu.Lock()
	matched := false
	for i, r := range mb.recvs {
		if r.matches(env) {
			mb.recvs = append(mb.recvs[:i], mb.recvs[i+1:]...)
			r.complete(env)
			matched = true
			break
		}
	}
	if !matched {
		mb.inbox = append(mb.inbox, env)
	}
	mb.cond.Broadcast()
	notify := mb.notify
	mb.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// post registers a receive, completing it immediately from the inbox when a
// matching message already arrived. A receive that can never complete — the
// mailbox failed, the named source departed, or every peer departed — is
// returned pre-canceled so no caller ever blocks on a dead communicator.
func (mb *mailbox) post(req *netRequest) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, env := range mb.inbox {
		if req.matches(env) {
			mb.inbox = append(mb.inbox[:i], mb.inbox[i+1:]...)
			req.complete(env)
			return
		}
	}
	dead := mb.failed || mb.nGone >= mb.size-1 ||
		(req.source >= 0 && req.source < mb.size && mb.gone[req.source])
	if dead {
		req.mu.Lock()
		req.canceled = true
		req.mu.Unlock()
		return
	}
	mb.recvs = append(mb.recvs, req)
}

// fail cancels every posted receive and makes future posts fail fast; the
// inbox is kept so already-arrived data stays readable by Test/Data on
// completed requests.
func (mb *mailbox) fail() {
	mb.mu.Lock()
	mb.failed = true
	mb.cancelLocked(func(*netRequest) bool { return true })
	mb.mu.Unlock()
}

// depart records that a rank's connection ended: posted receives naming
// that source are canceled (nothing from it can arrive any more), and when
// every peer is gone all receives are canceled, wildcards included.
func (mb *mailbox) depart(src int) {
	mb.mu.Lock()
	if src >= 0 && src < mb.size && !mb.gone[src] {
		mb.gone[src] = true
		mb.nGone++
	}
	if mb.nGone >= mb.size-1 {
		mb.cancelLocked(func(*netRequest) bool { return true })
	} else {
		mb.cancelLocked(func(r *netRequest) bool { return r.source == src })
	}
	mb.mu.Unlock()
}

// cancelLocked cancels every posted receive sel selects and wakes waiters.
// Callers hold mb.mu.
func (mb *mailbox) cancelLocked(sel func(*netRequest) bool) {
	var rest []*netRequest
	for _, r := range mb.recvs {
		if sel(r) {
			r.mu.Lock()
			r.canceled = true
			r.mu.Unlock()
		} else {
			rest = append(rest, r)
		}
	}
	mb.recvs = rest
	mb.cond.Broadcast()
	if mb.notify != nil {
		// The callback only signals a condition variable (the proxy's
		// wake); invoking it under the lock is deadlock-free because it
		// never re-enters the mailbox.
		mb.notify()
	}
}

// netRequest is the TCP transport's Request implementation. Sends complete
// eagerly; receives complete when the mailbox matches them.
type netRequest struct {
	mu       sync.Mutex
	done     bool
	canceled bool
	isRecv   bool
	source   int // matched source (recv) or destination (send)
	tag      int
	data     []byte
	mb       *mailbox // owning mailbox for receives
}

func (r *netRequest) matches(env envelope) bool {
	if r.done || r.canceled {
		return false
	}
	if r.source != Any && r.source != env.source {
		return false
	}
	if r.tag != Any && r.tag != env.tag {
		return false
	}
	return true
}

// complete must be called with the owning mailbox's lock held (or before
// the request is published).
func (r *netRequest) complete(env envelope) {
	r.mu.Lock()
	r.done = true
	r.data = env.data
	r.source = env.source
	r.tag = env.tag
	r.mu.Unlock()
}

func (r *netRequest) Test() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

func (r *netRequest) Canceled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.canceled
}

func (r *netRequest) Wait() {
	if !r.isRecv {
		return // sends complete eagerly
	}
	mb := r.mb
	mb.mu.Lock()
	for {
		r.mu.Lock()
		ok := r.done || r.canceled
		r.mu.Unlock()
		if ok {
			break
		}
		mb.cond.Wait()
	}
	mb.mu.Unlock()
}

func (r *netRequest) Data() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.data
}

func (r *netRequest) GetCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.data)
}

func (r *netRequest) Source() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.source
}

func (r *netRequest) Tag() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tag
}

func (r *netRequest) Cancel() bool {
	if !r.isRecv {
		return false
	}
	mb := r.mb
	mb.mu.Lock()
	defer mb.mu.Unlock()
	r.mu.Lock()
	if r.done || r.canceled {
		r.mu.Unlock()
		return false
	}
	r.canceled = true
	r.mu.Unlock()
	for i, q := range mb.recvs {
		if q == r {
			mb.recvs = append(mb.recvs[:i], mb.recvs[i+1:]...)
			break
		}
	}
	mb.cond.Broadcast()
	return true
}
