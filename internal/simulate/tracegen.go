package simulate

import (
	"time"

	"pulsarqr/internal/trace"
)

// classOf maps simulator kernels to the trace classes of the runtime, so
// simulated timelines render with the same palette as real ones (paper
// Fig. 7: red panel, orange update, blue binary).
func classOf(k Kernel) string {
	switch k {
	case Geqrt, Tsqrt:
		return "panel"
	case Ttqrt:
		return "binary"
	case Ttmqr:
		return "binary-update"
	default:
		return "update"
	}
}

// RunTraced simulates like Run and additionally returns the execution
// trace of the first maxWorkers workers (node 0 first), converted to
// trace events — enough to render paper-Fig.-7-style timelines for
// machine sizes no real host could run. maxWorkers <= 0 records nothing.
func RunTraced(w Workload, m Machine, p Profile, maxWorkers int) (Result, []trace.Event) {
	if p == GenericProfile {
		m.TaskOverhead *= 30
		m.HopIntra *= 5
		m.AlphaInter *= 3
	}
	g := buildGraph(w, m)
	var events []trace.Event
	perNode := m.Workers()
	g.onExec = func(t *task, worker int32, start, finish float64) {
		if int(worker) >= maxWorkers {
			return
		}
		events = append(events, trace.Event{
			Class:  classOf(t.kind),
			Panel:  int(t.panel),
			Node:   int(worker) / perNode,
			Thread: int(worker) % perNode,
			Start:  time.Duration(start * float64(time.Second)),
			End:    time.Duration(finish * float64(time.Second)),
		})
	}
	res := g.execute(p == SystolicProfile, w)
	return res, events
}
