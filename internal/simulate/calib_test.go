package simulate

import (
	"testing"

	"pulsarqr/internal/qr"
)

// TestCalibrationPrint is a diagnostic that prints the simulated numbers
// for the paper's figures; run with -v. Kept as documentation of the
// calibration and as a smoke test that the big graphs build and execute.
func TestCalibrationPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	nb, ib, h := 192, 48, 12
	mkOpts := func(tree qr.TreeKind) qr.Options {
		return qr.Options{NB: nb, IB: ib, Tree: tree, H: h}
	}
	n := 4608

	t.Log("--- Fig 10: n=4608, 9216 cores (768 nodes x 12) ---")
	mach := Kraken(768)
	for _, m := range []int{23040, 92160, 184320, 368640, 737280} {
		for _, tree := range []qr.TreeKind{qr.HierarchicalTree, qr.BinaryTree, qr.FlatTree} {
			r := Run(Workload{M: m, N: n, Opts: mkOpts(tree)}, mach, SystolicProfile)
			t.Logf("m=%7d %-13v %8.0f Gflop/s  (%.2fs, util %.2f, crit %.2fs, tasks %d)",
				m, tree, r.Gflops, r.Seconds, r.Utilization, r.CriticalPath, r.Tasks)
		}
	}

	t.Log("--- Fig 11: m=368640 n=4608, strong scaling ---")
	for _, cores := range []int{480, 1920, 3840, 7680, 15360} {
		mach := Kraken(cores / 12)
		for _, tree := range []qr.TreeKind{qr.HierarchicalTree, qr.BinaryTree, qr.FlatTree} {
			r := Run(Workload{M: 368640, N: n, Opts: mkOpts(tree)}, mach, SystolicProfile)
			t.Logf("cores=%5d %-13v %8.0f Gflop/s (%.2fs util %.2f)", cores, tree, r.Gflops, r.Seconds, r.Utilization)
		}
	}

	t.Log("--- VI-A: baselines at 9216 cores, m=368640 ---")
	r := Run(Workload{M: 368640, N: n, Opts: mkOpts(qr.HierarchicalTree)}, mach, SystolicProfile)
	gGen := Run(Workload{M: 368640, N: n, Opts: mkOpts(qr.HierarchicalTree)}, mach, GenericProfile)
	sc := DefaultScaLAPACK().Gflops(mach, 368640, n)
	t.Logf("systolic %0.f  generic %.0f (%.1f%% slower)  scalapack-model %.0f (%.1fx slower)",
		r.Gflops, gGen.Gflops, 100*(r.Gflops-gGen.Gflops)/r.Gflops, sc, r.Gflops/sc)
}
