package simulate

import (
	"container/heap"
	"fmt"

	"pulsarqr/internal/kernels"
)

// Profile selects the scheduling behavior being modeled.
type Profile int

const (
	// SystolicProfile models the PULSAR execution: cheap dataflow firing,
	// and the reduction chains effectively prioritized — the lazy sweep
	// plus the dedicated VDP placement keeps panel/merge tasks moving
	// (the lookahead effect of §V-D).
	SystolicProfile Profile = iota
	// GenericProfile models a generic centralized task runtime (the
	// PaRSEC-class comparison of §VI-A): higher per-task cost, no
	// by-pass pipelining of broadcasts, and no preference for
	// critical-path tasks over bulk updates.
	GenericProfile
)

func (p Profile) String() string {
	if p == GenericProfile {
		return "generic"
	}
	return "systolic"
}

// Result reports one simulated run.
type Result struct {
	Seconds  float64
	Gflops   float64
	Tasks    int
	Messages int64
	BytesInt int64
	// Utilization is busy worker-seconds divided by workers × makespan.
	Utilization float64
	// KernelSeconds is total busy time per kernel.
	KernelSeconds [numKernels]float64
	// CriticalPath is the longest dependency chain duration ignoring
	// resource limits (an unreachable lower bound on the makespan).
	CriticalPath float64
}

// Run simulates workload w on machine m under the given profile and
// returns the predicted performance. Reported Gflop/s always uses the
// conventional 2n²(m − n/3) count.
func Run(w Workload, m Machine, p Profile) Result {
	if p == GenericProfile {
		// Calibrated to the PaRSEC-class gap the paper reports (≥10 %
		// strong scaling, ≥20 % weak): centralized dependency tracking
		// costs tens of microseconds per task, intra-node hand-offs go
		// through the scheduler rather than a FIFO, and message injection
		// is not overlapped by a dedicated proxy.
		m.TaskOverhead *= 30
		m.HopIntra *= 5
		m.AlphaInter *= 3
	}
	g := buildGraph(w, m)
	critFirst := p == SystolicProfile
	return g.execute(critFirst, w)
}

// workerState holds the per-worker scheduling state: two ready heaps (the
// critical reduction tasks and the bulk updates) and the time the worker
// frees up.
type workerState struct {
	freeAt float64
	crit   taskHeap
	bulk   taskHeap
	stamp  int64
}

// taskHeap orders task ids by readyAt (ties by id for determinism).
type taskHeap struct {
	ids   []int32
	tasks []task
}

func (h taskHeap) Len() int { return len(h.ids) }
func (h taskHeap) Less(a, b int) bool {
	ta, tb := h.tasks[h.ids[a]].readyAt, h.tasks[h.ids[b]].readyAt
	if ta != tb {
		return ta < tb
	}
	return h.ids[a] < h.ids[b]
}
func (h taskHeap) Swap(a, b int) { h.ids[a], h.ids[b] = h.ids[b], h.ids[a] }
func (h *taskHeap) Push(x any)   { h.ids = append(h.ids, x.(int32)) }
func (h *taskHeap) Pop() any {
	old := h.ids
	n := len(old)
	x := old[n-1]
	h.ids = old[:n-1]
	return x
}

// candidate is a global event: worker w could start a task at time t.
type candidate struct {
	t     float64
	w     int32
	stamp int64
}

type candHeap []candidate

func (h candHeap) Len() int { return len(h) }
func (h candHeap) Less(a, b int) bool {
	if h[a].t != h[b].t {
		return h[a].t < h[b].t
	}
	return h[a].w < h[b].w
}
func (h candHeap) Swap(a, b int) { h[a], h[b] = h[b], h[a] }
func (h *candHeap) Push(x any)   { *h = append(*h, x.(candidate)) }
func (h *candHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (g *graph) execute(critFirst bool, w Workload) Result {
	nWorkers := int32(g.m.Nodes * g.m.Workers())
	ws := make([]workerState, nWorkers)
	for i := range ws {
		ws[i].crit.tasks = g.tasks
		ws[i].bulk.tasks = g.tasks
	}
	var cands candHeap

	refresh := func(wi int32) {
		st := &ws[wi]
		if st.crit.Len() == 0 && st.bulk.Len() == 0 {
			return
		}
		next := func(h *taskHeap) float64 {
			if h.Len() == 0 {
				return -1
			}
			return g.tasks[h.ids[0]].readyAt
		}
		t := next(&st.crit)
		if b := next(&st.bulk); t < 0 || (b >= 0 && b < t) {
			t = b
		}
		if t < st.freeAt {
			t = st.freeAt
		}
		st.stamp++
		heap.Push(&cands, candidate{t: t, w: wi, stamp: st.stamp})
	}

	enqueue := func(id int32) {
		tk := &g.tasks[id]
		st := &ws[tk.worker]
		if tk.crit {
			heap.Push(&st.crit, id)
		} else {
			heap.Push(&st.bulk, id)
		}
		refresh(tk.worker)
	}

	for id := range g.tasks {
		if g.tasks[id].deps == 0 {
			enqueue(int32(id))
		}
	}

	var makespan, busy float64
	var kernelBusy [numKernels]float64
	executed := 0
	for cands.Len() > 0 {
		c := heap.Pop(&cands).(candidate)
		st := &ws[c.w]
		if c.stamp != st.stamp {
			continue // stale
		}
		// Choose the heap: prefer the critical heap when its task can
		// start no later than the bulk one (systolic lookahead); the
		// generic profile just takes the earliest-ready task.
		pick := func() int32 {
			cr, bl := &st.crit, &st.bulk
			if cr.Len() == 0 {
				return int32(heap.Pop(bl).(int32))
			}
			if bl.Len() == 0 {
				return int32(heap.Pop(cr).(int32))
			}
			tc := g.tasks[cr.ids[0]].readyAt
			tb := g.tasks[bl.ids[0]].readyAt
			if tc < st.freeAt {
				tc = st.freeAt
			}
			if tb < st.freeAt {
				tb = st.freeAt
			}
			if critFirst {
				if tc <= tb {
					return int32(heap.Pop(cr).(int32))
				}
				return int32(heap.Pop(bl).(int32))
			}
			if tb <= tc {
				return int32(heap.Pop(bl).(int32))
			}
			return int32(heap.Pop(cr).(int32))
		}
		id := pick()
		tk := &g.tasks[id]
		start := tk.readyAt
		if st.freeAt > start {
			start = st.freeAt
		}
		finish := start + tk.dur
		st.freeAt = finish
		busy += tk.dur
		kernelBusy[tk.kind] += tk.dur
		if g.onExec != nil {
			g.onExec(tk, c.w, start, finish)
		}
		if finish > makespan {
			makespan = finish
		}
		executed++
		for _, e := range tk.succs {
			s := &g.tasks[e.to]
			if arr := finish + e.delay; arr > s.readyAt {
				s.readyAt = arr
			}
			s.deps--
			if s.deps == 0 {
				enqueue(e.to)
			}
		}
		refresh(c.w)
	}
	if executed != len(g.tasks) {
		panic(fmt.Sprintf("simulate: executed %d of %d tasks (dependency cycle?)", executed, len(g.tasks)))
	}

	res := Result{
		Seconds:       makespan,
		Tasks:         len(g.tasks),
		Messages:      g.msgs,
		BytesInt:      g.bytes,
		KernelSeconds: kernelBusy,
		CriticalPath:  g.criticalPath(),
	}
	if makespan > 0 {
		res.Gflops = kernels.FlopsQR(w.M, w.N) / 1e9 / makespan
		res.Utilization = busy / (float64(nWorkers) * makespan)
	}
	return res
}

// criticalPath returns the longest duration chain through the DAG
// (including message delays), the no-resource-limit lower bound.
func (g *graph) criticalPath() float64 {
	// Tasks were created in topological order (dependencies always point
	// from earlier to later ids), so one forward sweep suffices.
	longest := make([]float64, len(g.tasks))
	var best float64
	for id := range g.tasks {
		tk := &g.tasks[id]
		fin := longest[id] + tk.dur
		if fin > best {
			best = fin
		}
		for _, e := range tk.succs {
			if v := fin + e.delay; v > longest[e.to] {
				longest[e.to] = v
			}
		}
	}
	return best
}
