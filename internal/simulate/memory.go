package simulate

// Memory footprint model. §II of the paper reports that in a strong
// scaling study "it is possible to exhaust the available local memory,
// which then precludes runs with data sets exceeding the offending problem
// size" — the observation that motivated the weak-scaling work. This model
// estimates the per-node memory demand of a workload under the runtime's
// block-row placement so experiments can flag infeasible configurations
// the way the real machine would have failed them.

// MemoryModel describes a node's capacity.
type MemoryModel struct {
	// NodeBytes is the usable memory per node (Kraken: 16 GB).
	NodeBytes int64
	// RuntimeOverheadPerVDP approximates descriptor and queue state.
	RuntimeOverheadPerVDP int64
}

// KrakenMemory matches the paper's nodes: 16 GB each.
func KrakenMemory() MemoryModel {
	return MemoryModel{NodeBytes: 16 << 30, RuntimeOverheadPerVDP: 512}
}

// PeakNodeBytes estimates the peak memory on the most loaded node: its
// block of tile rows (matrix data), the in-flight packet working set
// (travelers, R packets and V/T broadcasts proportional to the node's
// share of one panel's chains), and runtime descriptors.
func PeakNodeBytes(w Workload, mach Machine, mem MemoryModel) int64 {
	nb := w.Opts.NB
	mt := (w.M + nb - 1) / nb
	nt := (w.N + nb - 1) / nb
	rowsPerNode := int64((mt + mach.Nodes - 1) / mach.Nodes)
	tileBytes := int64(8 * nb * nb)

	// Matrix tiles owned by the node.
	data := rowsPerNode * int64(nt) * tileBytes
	// In-flight packets: per active panel, each row chain holds at most
	// one traveler plus one (V,T) packet per trailing column; bound by the
	// rows on the node times (1 + nt) packets, times a small pipelining
	// factor for overlapped panels.
	inflight := rowsPerNode * int64(nt+1) * tileBytes / 2
	// Runtime descriptors: one VDP per (panel, row, column) materialized
	// lazily would be ideal; this implementation materializes the full 3D
	// array, so the descriptor count is rows × Σ_j (nt−j) on the node.
	vdps := rowsPerNode * int64(nt) * int64(nt+1) / 2
	return data + inflight + vdps*mem.RuntimeOverheadPerVDP
}

// Feasible reports whether the workload fits the nodes, and the estimated
// peak bytes on the most loaded node.
func Feasible(w Workload, mach Machine, mem MemoryModel) (bool, int64) {
	peak := PeakNodeBytes(w, mach, mem)
	return peak <= mem.NodeBytes, peak
}

// MinNodes returns the smallest node count (of the given machine shape)
// whose per-node memory fits the workload — the strong-scaling floor §II
// describes. Returns 0 if even one tile row per node does not fit.
func MinNodes(w Workload, coresPerNode int, mem MemoryModel) int {
	nb := w.Opts.NB
	mt := (w.M + nb - 1) / nb
	lo, hi := 1, mt
	if ok, _ := Feasible(w, Machine{Nodes: hi, CoresPerNode: coresPerNode}, mem); !ok {
		return 0
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if ok, _ := Feasible(w, Machine{Nodes: mid, CoresPerNode: coresPerNode}, mem); ok {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
