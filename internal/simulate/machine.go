// Package simulate predicts the performance of the tree-based QR on a
// large distributed-memory machine by discrete-event simulation of the
// exact task graph the 3D virtual systolic array executes.
//
// The paper's evaluation ran on Kraken, a Cray XT5 with 12-core nodes and
// a SeaStar2+ network — hardware this reproduction cannot access. The
// simulator substitutes a calibrated machine model: per-kernel efficiency
// factors on a per-core peak, an α–β network between nodes, queueing
// overheads inside them, and the same VDP-to-thread mapping the runtime
// uses. Absolute Gflop/s are model estimates; the comparative shapes —
// which tree wins, how each scales with m and with core count — are driven
// by the DAG critical path and communication volume, which are exact.
package simulate

import (
	"encoding/json"
	"fmt"
	"math"

	"pulsarqr/internal/kernels"
)

// Kernel enumerates the task kinds of the tile algorithm.
type Kernel int

const (
	Geqrt Kernel = iota
	Tsqrt
	Ttqrt
	Ormqr
	Tsmqr
	Ttmqr
	numKernels
)

func (k Kernel) String() string {
	return [...]string{"geqrt", "tsqrt", "ttqrt", "ormqr", "tsmqr", "ttmqr"}[k]
}

// Machine models the hardware. The JSON shape is the service's machine
// model wire format: qrserve publishes its measured model at
// GET /v1/machine-model with exactly these field names, so a simulation can
// load a live fleet's calibration without conversion (MachineFromJSON).
type Machine struct {
	// Nodes is the number of distributed-memory nodes.
	Nodes int `json:"nodes"`
	// CoresPerNode is the number of physical cores per node; one core per
	// node is dedicated to the communication proxy, as in the paper's runs.
	CoresPerNode int `json:"cores_per_node"`
	// CoreGflops is the per-core double-precision peak.
	CoreGflops float64 `json:"core_gflops"`
	// Eff holds the per-kernel fraction of peak the pure kernels reach, in
	// kernel order: geqrt, tsqrt, ttqrt, ormqr, tsmqr, ttmqr.
	Eff [numKernels]float64 `json:"eff"`
	// AlphaInter is the inter-node message latency in seconds.
	AlphaInter float64 `json:"alpha_inter_seconds"`
	// BetaInter is the inverse inter-node bandwidth in seconds per byte.
	BetaInter float64 `json:"beta_inter_seconds_per_byte"`
	// HopIntra is the intra-node queue hand-off cost in seconds.
	HopIntra float64 `json:"hop_intra_seconds"`
	// TaskOverhead is the runtime's per-task scheduling cost in seconds.
	TaskOverhead float64 `json:"task_overhead_seconds"`
}

// Bounds on machines Validate will accept. A machine model arrives over
// the wire (files, GET /v1/machine-model) and feeds allocations sized by
// its dimensions, so hostile values must be rejected here — not discovered
// as an out-of-memory inside the DES.
const (
	// MaxNodes caps the node count (the paper's Kraken tops out near 10^4
	// nodes; 2^16 leaves headroom without letting a poisoned model size a
	// worker table in the billions).
	MaxNodes = 1 << 16
	// MaxCoresPerNode caps cores per node.
	MaxCoresPerNode = 1 << 12
	// MaxCoreGflops caps the per-core peak (an exaflop core is a lie).
	MaxCoreGflops = 1e6
	// MaxCostSeconds caps every per-event cost term: a model claiming an
	// hour per message latency is poisoned, not slow.
	MaxCostSeconds = 3600
	// MaxBetaSecondsPerByte caps inverse bandwidth at one second per byte.
	MaxBetaSecondsPerByte = 1
)

// finiteCost reports v being a usable non-negative cost below the cap.
// NaN fails every comparison, so the check must be written to *accept* a
// known-good range rather than reject known-bad values.
func finiteCost(v, max float64) bool {
	return v >= 0 && v <= max && !math.IsNaN(v)
}

// Validate rejects a machine no simulation can run on — including poisoned
// wire models (NaN/Inf rates, absurd dimensions) that would otherwise turn
// the simulator into an allocation bomb or make every prediction NaN. Any
// machine that passes yields finite task and transfer times.
func (m Machine) Validate() error {
	if m.Nodes < 1 || m.Nodes > MaxNodes {
		return fmt.Errorf("simulate: machine has %d nodes (want 1..%d)", m.Nodes, MaxNodes)
	}
	if m.CoresPerNode < 1 || m.CoresPerNode > MaxCoresPerNode {
		return fmt.Errorf("simulate: machine has %d cores per node (want 1..%d)", m.CoresPerNode, MaxCoresPerNode)
	}
	if !(m.CoreGflops > 0) || m.CoreGflops > MaxCoreGflops {
		return fmt.Errorf("simulate: core peak %g Gflop/s outside (0, %g]", m.CoreGflops, float64(MaxCoreGflops))
	}
	for k := Kernel(0); k < numKernels; k++ {
		if !(m.Eff[k] > 0) || m.Eff[k] > 1 {
			return fmt.Errorf("simulate: kernel %s efficiency %g outside (0, 1]", k, m.Eff[k])
		}
	}
	if !finiteCost(m.AlphaInter, MaxCostSeconds) {
		return fmt.Errorf("simulate: alpha %g outside [0, %ds]", m.AlphaInter, MaxCostSeconds)
	}
	if !finiteCost(m.BetaInter, MaxBetaSecondsPerByte) {
		return fmt.Errorf("simulate: beta %g outside [0, %d s/byte]", m.BetaInter, MaxBetaSecondsPerByte)
	}
	if !finiteCost(m.HopIntra, MaxCostSeconds) {
		return fmt.Errorf("simulate: intra-node hop %g outside [0, %ds]", m.HopIntra, MaxCostSeconds)
	}
	if !finiteCost(m.TaskOverhead, MaxCostSeconds) {
		return fmt.Errorf("simulate: task overhead %g outside [0, %ds]", m.TaskOverhead, MaxCostSeconds)
	}
	return nil
}

// MachineFromJSON loads a machine model from its wire shape — the
// "machine" object served by qrserve's GET /v1/machine-model, or a
// hand-written calibration file.
func MachineFromJSON(data []byte) (Machine, error) {
	var m Machine
	if err := json.Unmarshal(data, &m); err != nil {
		return Machine{}, fmt.Errorf("simulate: machine model: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Machine{}, err
	}
	return m, nil
}

// MachineFromModelResponse loads a machine from a full GET
// /v1/machine-model response body — the {"machine": {...}, ...} envelope —
// falling back to the bare machine object, so both the endpoint response
// and a saved calibration file load with one call.
func MachineFromModelResponse(data []byte) (Machine, error) {
	var resp struct {
		Machine *Machine `json:"machine"`
	}
	if err := json.Unmarshal(data, &resp); err == nil && resp.Machine != nil {
		if err := resp.Machine.Validate(); err != nil {
			return Machine{}, err
		}
		return *resp.Machine, nil
	}
	return MachineFromJSON(data)
}

// Workers returns the number of worker cores per node.
func (m Machine) Workers() int {
	w := m.CoresPerNode - 1
	if w < 1 {
		w = 1
	}
	return w
}

// TotalCores returns the core count reported on the x-axis of scaling
// plots (workers plus proxy, as the paper counts them).
func (m Machine) TotalCores() int { return m.Nodes * m.CoresPerNode }

// Kraken models one cabinet-scale slice of the Cray XT5 used in the
// paper: 2×6-core 2.6 GHz AMD Opteron (Istanbul) per node — 4 flops/cycle
// → 10.4 Gflop/s per core — and a SeaStar2+ torus (~6 µs latency, ~6 GB/s
// per link). Kernel efficiencies are calibrated to the relative kernel
// performance PLASMA's core_blas achieves on that class of hardware: the
// gemm-rich pair updates run near library speed, the panel kernels are
// bound by level-2 work, and the triangle-triangle kernels pay their
// irregularity (the paper's §VI notes they "may not be optimized").
func Kraken(nodes int) Machine {
	m := Machine{
		Nodes:        nodes,
		CoresPerNode: 12,
		CoreGflops:   10.4,
		AlphaInter:   6e-6,
		BetaInter:    1.0 / 6e9,
		HopIntra:     0.4e-6,
		TaskOverhead: 4e-6,
	}
	m.Eff[Geqrt] = 0.34
	m.Eff[Tsqrt] = 0.46
	m.Eff[Ttqrt] = 0.17
	m.Eff[Ormqr] = 0.62
	m.Eff[Tsmqr] = 0.74
	m.Eff[Ttmqr] = 0.38
	return m
}

// LocalHost models the machine the test-suite runs on: useful for
// cross-checking simulated orderings against real small-scale runs.
func LocalHost(nodes, coresPerNode int) Machine {
	m := Machine{
		Nodes:        nodes,
		CoresPerNode: coresPerNode,
		CoreGflops:   2.0,
		AlphaInter:   2e-6,
		BetaInter:    1.0 / 8e9,
		HopIntra:     0.3e-6,
		TaskOverhead: 3e-6,
	}
	m.Eff = Kraken(1).Eff
	return m
}

// taskTime returns the execution time of one kernel invocation, including
// the runtime's per-task overhead.
func (m Machine) taskTime(k Kernel, flops float64) float64 {
	return flops/(m.CoreGflops*1e9*m.Eff[k]) + m.TaskOverhead
}

// transfer returns the delivery delay for a message of the given size
// between two placements.
func (m Machine) transfer(sameNode bool, bytes int) float64 {
	if sameNode {
		return m.HopIntra
	}
	return m.AlphaInter + float64(bytes)*m.BetaInter
}

// kernelFlops returns the operation count of each kernel at tile size nb.
func kernelFlops(k Kernel, nb, cols int) float64 {
	switch k {
	case Geqrt:
		return kernels.FlopsGeqrt(nb, nb)
	case Tsqrt:
		return kernels.FlopsTsqrt(nb, nb)
	case Ttqrt:
		return kernels.FlopsTtqrt(nb)
	case Ormqr:
		return kernels.FlopsOrmqr(nb, cols, nb)
	case Tsmqr:
		return kernels.FlopsTsmqr(nb, nb, cols)
	case Ttmqr:
		return kernels.FlopsTtmqr(nb, cols)
	default:
		panic(fmt.Sprintf("simulate: kernel %d", k))
	}
}
