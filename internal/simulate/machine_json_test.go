package simulate

import (
	"bytes"
	"encoding/json"
	"testing"
)

// The JSON roundtrip is the /v1/machine-model contract: a served machine
// must load back identically through MachineFromJSON.
func TestMachineJSONRoundtrip(t *testing.T) {
	want := Kraken(16)
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MachineFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("roundtrip drifted:\n got %+v\nwant %+v", got, want)
	}
	// The wire field names are the contract — a rename breaks every saved
	// calibration file.
	for _, field := range []string{
		`"nodes"`, `"cores_per_node"`, `"core_gflops"`, `"eff"`,
		`"alpha_inter_seconds"`, `"beta_inter_seconds_per_byte"`,
		`"hop_intra_seconds"`, `"task_overhead_seconds"`,
	} {
		if !bytes.Contains(data, []byte(field)) {
			t.Fatalf("machine JSON missing %s: %s", field, data)
		}
	}
}

func TestMachineFromJSONRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      `{`,
		"no nodes":      `{"cores_per_node":2,"core_gflops":1,"eff":[1,1,1,1,1,1]}`,
		"zero peak":     `{"nodes":1,"cores_per_node":2,"core_gflops":0,"eff":[1,1,1,1,1,1]}`,
		"bad eff":       `{"nodes":1,"cores_per_node":2,"core_gflops":1,"eff":[1,1,1,1,1,2]}`,
		"zero eff":      `{"nodes":1,"cores_per_node":2,"core_gflops":1,"eff":[0,1,1,1,1,1]}`,
		"negative cost": `{"nodes":1,"cores_per_node":2,"core_gflops":1,"eff":[1,1,1,1,1,1],"alpha_inter_seconds":-1}`,
	}
	for name, data := range cases {
		if _, err := MachineFromJSON([]byte(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
