package simulate

import (
	"math"

	"pulsarqr/internal/kernels"
)

// ScaLAPACKModel is the analytic performance model of the established
// baseline (§VI-A): a bulk-synchronous block QR (pdgeqrf) on a 2D process
// grid. Its defining property on tall-skinny matrices is the
// latency-bound, BLAS-2 panel factorization that the whole machine waits
// for — the exact weakness tree-based QR removes. The constants are
// calibrated so the model reproduces the ratios the paper reports (tree QR
// at least 3× and up to an order of magnitude faster), with each term
// individually defensible:
//
//   - every panel column performs two collectives (norm reduction +
//     reflector broadcast) over the process column,
//   - the distributed panel runs BLAS-2 on short strided column pieces at
//     a few percent of peak,
//   - the trailing update runs at gemm-class efficiency over all P
//     processes, with the panel broadcast volume on top,
//   - there is no lookahead: panel and update strictly alternate.
type ScaLAPACKModel struct {
	// NB is the blocking factor of the block algorithm.
	NB int
	// PanelEff is the fraction of peak the distributed BLAS-2 panel
	// reaches on the shortening column pieces.
	PanelEff float64
	// UpdateEff is the trailing update's fraction of peak.
	UpdateEff float64
}

// DefaultScaLAPACK mirrors a LibSci/ScaLAPACK configuration of the era.
func DefaultScaLAPACK() ScaLAPACKModel {
	return ScaLAPACKModel{NB: 48, PanelEff: 0.035, UpdateEff: 0.70}
}

// Time predicts the factorization time of an m×n matrix on machine mc
// using a near-square process grid over all cores (MPI-everywhere, as
// ScaLAPACK runs).
func (s ScaLAPACKModel) Time(mc Machine, m, n int) float64 {
	p := mc.TotalCores()
	// Near-square grid, the common default.
	pr := 1
	for pr*pr <= p {
		pr++
	}
	pr--
	pc := p / pr
	rate := mc.CoreGflops * 1e9

	logPr := math.Ceil(math.Log2(float64(pr)))
	logPc := math.Ceil(math.Log2(float64(max(pc, 2))))
	var t float64
	for j := 0; j < n; j += s.NB {
		mj := float64(m - j)
		sb := float64(min(s.NB, n-j))
		// Panel: BLAS-2 work over the process column + two collectives
		// per column.
		t += 2 * mj * sb * sb / (float64(pr) * rate * s.PanelEff)
		t += sb * 2 * mc.AlphaInter * logPr
		// Panel broadcast along process rows.
		t += mc.AlphaInter*logPc + (mj*sb*8/float64(pr))*mc.BetaInter*logPc
		// Trailing update, bulk-synchronous over all processes.
		nc := float64(n-j) - sb
		if nc > 0 {
			t += 4 * mj * sb * nc / (float64(p) * rate * s.UpdateEff)
		}
	}
	return t
}

// Gflops returns the model's predicted rate using the conventional count.
func (s ScaLAPACKModel) Gflops(mc Machine, m, n int) float64 {
	return kernels.FlopsQR(m, n) / 1e9 / s.Time(mc, m, n)
}
