package simulate

import (
	"testing"

	"pulsarqr/internal/qr"
)

func wl(m, n int, tree qr.TreeKind, nb, ib, h int) Workload {
	return Workload{M: m, N: n, Opts: qr.Options{NB: nb, IB: ib, Tree: tree, H: h}}
}

// smallMachine keeps unit tests fast.
func smallMachine(nodes int) Machine {
	m := Kraken(nodes)
	return m
}

func TestRunBasicSanity(t *testing.T) {
	m := smallMachine(2)
	r := Run(wl(96*20, 96, qr.HierarchicalTree, 96, 24, 4), m, SystolicProfile)
	if r.Seconds <= 0 || r.Gflops <= 0 {
		t.Fatalf("nonpositive result: %+v", r)
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Fatalf("utilization %v out of range", r.Utilization)
	}
	if r.Seconds < r.CriticalPath {
		t.Fatalf("makespan %v below critical path %v", r.Seconds, r.CriticalPath)
	}
	if r.Tasks == 0 || r.Messages == 0 {
		t.Fatalf("empty graph stats: %+v", r)
	}
}

func TestTaskCountMatchesPlan(t *testing.T) {
	nb := 32
	mt, nt := 12, 3
	w := wl(nb*mt, nb*nt, qr.HierarchicalTree, nb, 8, 4)
	m := smallMachine(1)
	g := buildGraph(w, m)
	want := 0
	for j := 0; j < nt; j++ {
		c := qr.Plan(j, mt, w.Opts).Count(nt - j - 1)
		want += c.Geqrt + c.Tsqrt + c.Ttqrt + c.Ormqr + c.Tsmqr + c.Ttmqr
	}
	if len(g.tasks) != want {
		t.Fatalf("graph has %d tasks, plan implies %d", len(g.tasks), want)
	}
}

func TestDeterminism(t *testing.T) {
	w := wl(96*30, 96*3, qr.BinaryTree, 96, 24, 1)
	m := smallMachine(3)
	a := Run(w, m, SystolicProfile)
	b := Run(w, m, SystolicProfile)
	if a.Seconds != b.Seconds || a.Gflops != b.Gflops {
		t.Fatalf("simulation not deterministic: %v vs %v", a.Seconds, b.Seconds)
	}
}

func TestTreeOrderingTallSkinny(t *testing.T) {
	// The paper's headline (Fig. 10/11): for tall-skinny matrices at
	// scale, hierarchical > binary > flat.
	m := Kraken(128) // 1536 cores
	nb, ib := 192, 48
	hier := Run(wl(192*960, 192*12, qr.HierarchicalTree, nb, ib, 12), m, SystolicProfile)
	bin := Run(wl(192*960, 192*12, qr.BinaryTree, nb, ib, 1), m, SystolicProfile)
	flat := Run(wl(192*960, 192*12, qr.FlatTree, nb, ib, 1), m, SystolicProfile)
	if !(hier.Gflops > bin.Gflops && bin.Gflops > flat.Gflops) {
		t.Fatalf("ordering violated: hier=%.0f bin=%.0f flat=%.0f",
			hier.Gflops, bin.Gflops, flat.Gflops)
	}
	if hier.Gflops < 2*flat.Gflops {
		t.Fatalf("hierarchical should beat flat by a wide margin: %.0f vs %.0f",
			hier.Gflops, flat.Gflops)
	}
}

func TestAsymptoticScalingShape(t *testing.T) {
	// Fig. 10 shape: hierarchical Gflop/s grows with m at fixed n and
	// cores; flat saturates early.
	m := Kraken(64)
	nb, ib := 192, 48
	n := 192 * 8
	var prev float64
	var flatRates []float64
	for _, rows := range []int{192 * 60, 192 * 240, 192 * 480} {
		h := Run(wl(rows, n, qr.HierarchicalTree, nb, ib, 12), m, SystolicProfile)
		if h.Gflops <= prev {
			t.Fatalf("hierarchical rate not growing with m: %v after %v", h.Gflops, prev)
		}
		prev = h.Gflops
		f := Run(wl(rows, n, qr.FlatTree, nb, ib, 1), m, SystolicProfile)
		flatRates = append(flatRates, f.Gflops)
	}
	// Flat must grow far slower between the last two points.
	if flatRates[2] > 1.5*flatRates[1] {
		t.Fatalf("flat tree should saturate: %v", flatRates)
	}
}

func TestStrongScalingShape(t *testing.T) {
	// Fig. 11 shape: hierarchical keeps gaining with cores; flat stalls.
	nb, ib := 192, 48
	w := wl(192*960, 192*12, qr.HierarchicalTree, nb, ib, 12)
	fw := wl(192*960, 192*12, qr.FlatTree, nb, ib, 1)
	var hier, flat []float64
	for _, nodes := range []int{20, 80, 320} {
		m := Kraken(nodes)
		hier = append(hier, Run(w, m, SystolicProfile).Gflops)
		flat = append(flat, Run(fw, m, SystolicProfile).Gflops)
	}
	if !(hier[2] > hier[1] && hier[1] > hier[0]) {
		t.Fatalf("hierarchical strong scaling broken: %v", hier)
	}
	if hier[2]/hier[0] < 2 {
		t.Fatalf("hierarchical speedup too small: %v", hier)
	}
	// Flat saturates: no meaningful gain over the last 4x core increase.
	if flat[2] > 1.2*flat[1] {
		t.Fatalf("flat tree should saturate: %v", flat)
	}
	// And the hierarchical advantage widens with cores.
	if hier[2]/flat[2] < 1.5*(hier[0]/flat[0]) {
		t.Fatalf("hierarchical advantage should widen: hier=%v flat=%v", hier, flat)
	}
}

func TestGenericRuntimeSlower(t *testing.T) {
	m := Kraken(40)
	w := wl(192*480, 192*12, qr.HierarchicalTree, 192, 48, 12)
	sys := Run(w, m, SystolicProfile)
	gen := Run(w, m, GenericProfile)
	if gen.Gflops >= sys.Gflops {
		t.Fatalf("generic runtime should be slower: %v vs %v", gen.Gflops, sys.Gflops)
	}
	if gap := (sys.Gflops - gen.Gflops) / sys.Gflops; gap < 0.05 {
		t.Fatalf("generic gap only %.1f%%; paper reports >=10%%", 100*gap)
	}
}

func TestScaLAPACKModelRatio(t *testing.T) {
	// §VI-A: tree-based QR at least 3× faster than ScaLAPACK/LibSci.
	m := Kraken(640)
	w := wl(368640, 4608, qr.HierarchicalTree, 192, 48, 12)
	tree := Run(w, m, SystolicProfile)
	scal := DefaultScaLAPACK().Gflops(m, 368640, 4608)
	if ratio := tree.Gflops / scal; ratio < 3 {
		t.Fatalf("tree/scalapack ratio %.2f below the paper's >=3", ratio)
	}
}

func TestShiftedBeatsFixedBoundary(t *testing.T) {
	// Fig. 7: shifting domain boundaries overlaps consecutive flat-tree
	// reductions, so the shifted policy must not be slower.
	m := Kraken(32)
	nb, ib := 192, 48
	sh := Workload{M: 192 * 240, N: 192 * 8,
		Opts: qr.Options{NB: nb, IB: ib, Tree: qr.HierarchicalTree, H: 8, Boundary: qr.ShiftedBoundary}}
	fx := sh
	fx.Opts.Boundary = qr.FixedBoundary
	rs := Run(sh, m, SystolicProfile)
	rf := Run(fx, m, SystolicProfile)
	if rs.Seconds > rf.Seconds*1.02 {
		t.Fatalf("shifted (%.3fs) should not lose to fixed (%.3fs)", rs.Seconds, rf.Seconds)
	}
}

func TestMachineHelpers(t *testing.T) {
	m := Kraken(2)
	if m.Workers() != 11 || m.TotalCores() != 24 {
		t.Fatalf("kraken node accounting wrong: %d workers %d cores", m.Workers(), m.TotalCores())
	}
	if m.transfer(true, 1<<20) >= m.transfer(false, 1<<20) {
		t.Fatal("intra-node transfer should be cheaper")
	}
	if m.taskTime(Tsmqr, 1e9) <= 0 {
		t.Fatal("task time must be positive")
	}
	l := LocalHost(1, 4)
	if l.Workers() != 3 {
		t.Fatalf("localhost workers %d", l.Workers())
	}
}

func TestCriticalPathLowerBoundTight(t *testing.T) {
	// With a single worker the makespan must be at least the sum of all
	// task durations (no parallelism to hide anything).
	m := smallMachine(1)
	m.CoresPerNode = 2 // one worker
	w := wl(64*6, 64*2, qr.HierarchicalTree, 64, 16, 2)
	g := buildGraph(w, m)
	var sum float64
	for i := range g.tasks {
		sum += g.tasks[i].dur
	}
	r := g.execute(true, w)
	if r.Seconds < sum {
		t.Fatalf("single worker makespan %v below serial work %v", r.Seconds, sum)
	}
}

func TestScaLAPACKModelScalesWithCores(t *testing.T) {
	s := DefaultScaLAPACK()
	t1 := s.Time(Kraken(40), 368640, 4608)
	t2 := s.Time(Kraken(160), 368640, 4608)
	if t2 >= t1 {
		t.Fatal("model should speed up with cores")
	}
	if t1/t2 > 4 {
		t.Fatalf("model scales too perfectly (%.1fx on 4x cores): the panel bottleneck is missing", t1/t2)
	}
}
