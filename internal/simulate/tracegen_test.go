package simulate

import (
	"testing"

	"pulsarqr/internal/qr"
	"pulsarqr/internal/trace"
)

func TestRunTracedEventsConsistent(t *testing.T) {
	m := Kraken(2)
	w := wl(192*24, 192*4, qr.HierarchicalTree, 192, 48, 4)
	res, events := RunTraced(w, m, SystolicProfile, 6)
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	classes := map[string]bool{}
	for _, e := range events {
		if e.End <= e.Start {
			t.Fatalf("empty interval: %+v", e)
		}
		if e.Node < 0 || e.Thread < 0 || e.Thread >= m.Workers() {
			t.Fatalf("bad lane: %+v", e)
		}
		if e.Panel < 0 || e.Panel >= 4 {
			t.Fatalf("bad panel: %+v", e)
		}
		classes[e.Class] = true
	}
	for _, c := range []string{"panel", "update", "binary", "binary-update"} {
		if !classes[c] {
			t.Fatalf("missing class %q in %v", c, classes)
		}
	}
	// The recorded timeline fits inside the simulated makespan.
	tl := trace.Build(events)
	if tl.Makespan.Seconds() > res.Seconds*1.0000001 {
		t.Fatalf("trace makespan %v exceeds simulated %vs", tl.Makespan, res.Seconds)
	}
	// Same result as an untraced run.
	plain := Run(w, m, SystolicProfile)
	if plain.Seconds != res.Seconds {
		t.Fatalf("tracing changed the simulation: %v vs %v", plain.Seconds, res.Seconds)
	}
}

func TestRunTracedZeroWorkers(t *testing.T) {
	m := Kraken(1)
	w := wl(192*8, 192*2, qr.FlatTree, 192, 48, 1)
	_, events := RunTraced(w, m, SystolicProfile, 0)
	if len(events) != 0 {
		t.Fatalf("recorded %d events with maxWorkers=0", len(events))
	}
}

func TestSimulatedShiftOverlapsLikeFig7(t *testing.T) {
	// The simulated traces must show the same qualitative Fig. 7 result as
	// the real runs: shifted boundaries overlap panels more than fixed.
	m := Kraken(4)
	base := qr.Options{NB: 192, IB: 48, Tree: qr.HierarchicalTree, H: 6}
	overlap := func(bp qr.BoundaryPolicy) float64 {
		o := base
		o.Boundary = bp
		_, ev := RunTraced(Workload{M: 192 * 96, N: 192 * 6, Opts: o}, m, SystolicProfile, m.Workers()*4)
		return trace.Build(ev).PanelOverlap(nil)
	}
	sh, fx := overlap(qr.ShiftedBoundary), overlap(qr.FixedBoundary)
	if sh <= fx {
		t.Fatalf("shifted overlap %.2f should exceed fixed %.2f", sh, fx)
	}
}
