package simulate

import (
	"fmt"

	"pulsarqr/internal/qr"
)

// Workload describes one factorization to simulate.
type Workload struct {
	M, N int
	Opts qr.Options
}

func (w Workload) String() string {
	return fmt.Sprintf("m=%d n=%d %v", w.M, w.N, w.Opts)
}

// edge is a dependency with its delivery delay (computed at build time
// from the placement of both endpoints).
type edge struct {
	to    int32
	delay float64
}

// task is one kernel invocation in the DAG.
type task struct {
	dur     float64
	worker  int32
	deps    int32
	readyAt float64
	crit    bool // panel/merge task: on the reduction critical path
	kind    Kernel
	panel   int32 // panel step j, for trace generation
	succs   []edge
}

// graph is the complete DAG of one workload on one machine.
type graph struct {
	m       Machine
	tasks   []task
	msgs    int64
	bytes   int64
	flopSum float64
	// onExec, when set, observes every task execution (trace generation).
	onExec func(t *task, worker int32, start, finish float64)
}

// buildGraph generates the task graph the 3D VSA executes for workload w:
// the same plans, the same chains, the same placement. Tile rows map to
// nodes in contiguous blocks and to worker threads cyclically by
// (row+column), exactly like the runtime's mapping.
func buildGraph(w Workload, m Machine) *graph {
	opts := w.Opts
	nb, ib := opts.NB, opts.IB
	mt := (w.M + nb - 1) / nb
	nt := (w.N + nb - 1) / nb
	if mt < nt {
		panic(fmt.Sprintf("simulate: m=%d < n=%d", w.M, w.N))
	}
	workers := m.Workers()
	rowsPerNode := (mt + m.Nodes - 1) / m.Nodes
	nodeOf := func(i int) int32 {
		n := i / rowsPerNode
		if n >= m.Nodes {
			n = m.Nodes - 1
		}
		return int32(n)
	}
	workerOf := func(i, c int) int32 {
		return nodeOf(i)*int32(workers) + int32((i+c)%workers)
	}

	g := &graph{m: m}
	nbBytes := 8 * nb * nb
	vtBytes := 8 * (nb*nb + ib*nb)

	curPanel := 0
	newTask := func(k Kernel, row, col int, cols int, crit bool) int32 {
		id := int32(len(g.tasks))
		fl := kernelFlops(k, nb, cols)
		g.flopSum += fl
		g.tasks = append(g.tasks, task{
			dur:    m.taskTime(k, fl),
			worker: workerOf(row, col),
			kind:   k,
			crit:   crit,
			panel:  int32(curPanel),
		})
		return id
	}
	// dep connects src -> dst with a message of the given size and an
	// extra fixed delay (pipelined by-pass hops).
	dep := func(src, dst int32, bytes int, extra float64) {
		if src < 0 {
			return
		}
		s, d := &g.tasks[src], &g.tasks[dst]
		same := s.worker/int32(workers) == d.worker/int32(workers)
		delay := m.transfer(same, bytes) + extra
		if !same {
			g.msgs++
			g.bytes += int64(bytes)
		}
		s.succs = append(s.succs, edge{to: dst, delay: delay})
		d.deps++
	}

	// lastTouch[i*nt+l] is the task that released tile (i,l), -1 initially.
	lastTouch := make([]int32, mt*nt)
	for i := range lastTouch {
		lastTouch[i] = -1
	}
	lt := func(i, l int) int32 { return lastTouch[i*nt+l] }
	setLT := func(i, l int, t int32) { lastTouch[i*nt+l] = t }

	for j := 0; j < nt; j++ {
		curPanel = j
		plan := qr.Plan(j, mt, opts)

		// Panel chains and merges (the R stream).
		panelTask := map[int]int32{}
		streamEnd := map[int]int32{}
		for _, d := range plan.Domains {
			tg := newTask(Geqrt, d.Top, j, 0, true)
			dep(lt(d.Top, j), tg, nbBytes, 0)
			panelTask[d.Top] = tg
			prev := tg
			for _, k := range d.Rows {
				ts := newTask(Tsqrt, k, j, 0, true)
				dep(prev, ts, nbBytes, 0)
				dep(lt(k, j), ts, nbBytes, 0)
				panelTask[k] = ts
				prev = ts
			}
			streamEnd[d.Top] = prev
		}
		mergeTask := make([]int32, len(plan.Merges))
		for mi, mg := range plan.Merges {
			t := newTask(Ttqrt, mg.Surv, j, 0, true)
			dep(streamEnd[mg.Surv], t, nbBytes, 0)
			dep(streamEnd[mg.K], t, nbBytes, 0)
			streamEnd[mg.Surv] = t
			mergeTask[mi] = t
		}

		// Update chains per trailing column.
		for l := j + 1; l < nt; l++ {
			hop := float64(l-j-1) * m.HopIntra // by-pass pipeline depth
			updEnd := map[int]int32{}
			for _, d := range plan.Domains {
				u := newTask(Ormqr, d.Top, l, nb, false)
				dep(panelTask[d.Top], u, vtBytes, hop)
				dep(lt(d.Top, l), u, nbBytes, 0)
				prev := u
				for _, k := range d.Rows {
					ut := newTask(Tsmqr, k, l, nb, false)
					dep(panelTask[k], ut, vtBytes, hop)
					dep(prev, ut, nbBytes, 0)
					dep(lt(k, l), ut, nbBytes, 0)
					setLT(k, l, ut)
					prev = ut
				}
				updEnd[d.Top] = prev
			}
			for mi, mg := range plan.Merges {
				mu := newTask(Ttmqr, mg.Surv, l, nb, false)
				dep(mergeTask[mi], mu, vtBytes, hop)
				dep(updEnd[mg.Surv], mu, nbBytes, 0)
				dep(updEnd[mg.K], mu, nbBytes, 0)
				updEnd[mg.Surv] = mu
				setLT(mg.K, l, mu)
			}
		}
	}
	return g
}
