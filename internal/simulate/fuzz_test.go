package simulate

import (
	"math"
	"testing"
)

// FuzzMachineModel fuzzes both wire readers — MachineFromJSON (bare machine
// object) and MachineFromModelResponse (the GET /v1/machine-model envelope).
// The invariant under test is the one Validate promises: any machine either
// reader ACCEPTS is safe to simulate on — dimensions inside the caps, and
// every task and transfer time finite and non-negative. Hostile inputs
// (NaN/Inf rates, absurd node counts, truncated JSON) must be rejected, never
// propagated into the DES as allocation sizes or NaN clocks.
func FuzzMachineModel(f *testing.F) {
	seed := [][]byte{
		// Healthy models, bare and enveloped.
		[]byte(`{"nodes":16,"cores_per_node":12,"core_gflops":10.4,"eff":[0.34,0.46,0.17,0.62,0.74,0.38],"alpha_inter_seconds":6e-06,"beta_inter_seconds_per_byte":1.6666666666666667e-10,"hop_intra_seconds":4e-07,"task_overhead_seconds":4e-06}`),
		[]byte(`{"machine":{"nodes":2,"cores_per_node":3,"core_gflops":2,"eff":[0.34,0.46,0.17,0.62,0.74,0.38],"alpha_inter_seconds":2e-06,"beta_inter_seconds_per_byte":1.25e-10,"hop_intra_seconds":3e-07,"task_overhead_seconds":3e-06},"measured":true,"links":[]}`),
		// Truncation mid-object.
		[]byte(`{"machine":{"nodes":2,"cores_per_node":3,"core_gf`),
		// Allocation bombs and dimension nonsense.
		[]byte(`{"nodes":2147483647,"cores_per_node":12,"core_gflops":10,"eff":[1,1,1,1,1,1]}`),
		[]byte(`{"nodes":-1,"cores_per_node":0,"core_gflops":10,"eff":[1,1,1,1,1,1]}`),
		// Poisoned rates: JSON has no NaN/Inf literal, but huge exponents and
		// string-typed numbers probe the decoder's edges.
		[]byte(`{"nodes":1,"cores_per_node":2,"core_gflops":1e309,"eff":[1,1,1,1,1,1]}`),
		[]byte(`{"nodes":1,"cores_per_node":2,"core_gflops":1,"eff":[1,1,1,1,1,1],"alpha_inter_seconds":1e400}`),
		[]byte(`{"nodes":1,"cores_per_node":2,"core_gflops":"NaN","eff":[1,1,1,1,1,1]}`),
		// Efficiency above one (a >100% kernel would make predictions lie).
		[]byte(`{"nodes":1,"cores_per_node":2,"core_gflops":1,"eff":[2,1,1,1,1,1]}`),
		// Envelope with a null machine must fall back to the bare parse.
		[]byte(`{"machine":null}`),
		[]byte(``),
		[]byte(`[]`),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, load := range []func([]byte) (Machine, error){MachineFromJSON, MachineFromModelResponse} {
			m, err := load(data)
			if err != nil {
				continue // rejected: nothing else to check
			}
			if err := m.Validate(); err != nil {
				t.Fatalf("reader accepted a machine Validate rejects: %v\ninput: %q", err, data)
			}
			if m.Nodes < 1 || m.Nodes > MaxNodes || m.CoresPerNode < 1 || m.CoresPerNode > MaxCoresPerNode {
				t.Fatalf("accepted machine outside dimension caps: %+v", m)
			}
			// Every accepted machine must yield finite, non-negative costs —
			// the DES trusts these without further checks.
			for k := Kernel(0); k < numKernels; k++ {
				tt := m.taskTime(k, kernelFlops(k, 64, 64))
				if math.IsNaN(tt) || math.IsInf(tt, 0) || tt < 0 {
					t.Fatalf("kernel %s time %g from accepted machine %+v", k, tt, m)
				}
			}
			for _, sameNode := range []bool{true, false} {
				tr := m.transfer(sameNode, 64*64*8)
				if math.IsNaN(tr) || math.IsInf(tr, 0) || tr < 0 {
					t.Fatalf("transfer(sameNode=%v) = %g from accepted machine %+v", sameNode, tr, m)
				}
			}
		}
	})
}
