package simulate

import (
	"testing"

	"pulsarqr/internal/qr"
)

func TestMemoryDataTermDominates(t *testing.T) {
	w := wl(192*1920, 4608, qr.HierarchicalTree, 192, 48, 12)
	mach := Kraken(40)
	peak := PeakNodeBytes(w, mach, KrakenMemory())
	// 1920/40 = 48 tile rows per node × 24 tile columns × 192²×8 bytes ≈ 340 MB.
	dataOnly := int64(48) * 24 * 192 * 192 * 8
	if peak < dataOnly {
		t.Fatalf("peak %d below the raw data size %d", peak, dataOnly)
	}
	if peak > 4*dataOnly {
		t.Fatalf("peak %d implausibly far above data size %d", peak, dataOnly)
	}
}

func TestMemoryFeasibilityMonotonicInNodes(t *testing.T) {
	w := wl(192*3840, 4608, qr.HierarchicalTree, 192, 48, 12)
	mem := KrakenMemory()
	prev := int64(1 << 62)
	for _, nodes := range []int{10, 40, 160, 640} {
		_, peak := Feasible(w, Kraken(nodes), mem)
		if peak > prev {
			t.Fatalf("peak memory grew with more nodes: %d then %d", prev, peak)
		}
		prev = peak
	}
}

func TestMemoryStrongScalingFloor(t *testing.T) {
	// A huge matrix on tiny toy nodes must demand several of them — the
	// §II strong-scaling memory wall.
	w := wl(192*38400, 9216, qr.HierarchicalTree, 192, 48, 12)
	tiny := MemoryModel{NodeBytes: 1 << 30, RuntimeOverheadPerVDP: 512} // 1 GB nodes
	minNodes := MinNodes(w, 12, tiny)
	if minNodes < 2 {
		t.Fatalf("min nodes = %d; a %d-tile-row matrix cannot fit one 1GB node", minNodes, 38400)
	}
	// And the returned floor must itself be feasible while floor-1 is not.
	if ok, _ := Feasible(w, Machine{Nodes: minNodes, CoresPerNode: 12}, tiny); !ok {
		t.Fatal("reported floor infeasible")
	}
	if minNodes > 1 {
		if ok, _ := Feasible(w, Machine{Nodes: minNodes - 1, CoresPerNode: 12}, tiny); ok {
			t.Fatal("floor-1 unexpectedly feasible")
		}
	}
}

func TestMemoryImpossibleWorkload(t *testing.T) {
	// One tile row alone exceeding node memory: MinNodes reports 0.
	w := wl(1<<20, 1<<20, qr.HierarchicalTree, 1024, 48, 12) // 1M×1M matrix
	tiny := MemoryModel{NodeBytes: 1 << 20, RuntimeOverheadPerVDP: 512}
	if got := MinNodes(w, 12, tiny); got != 0 {
		t.Fatalf("MinNodes = %d for an impossible workload", got)
	}
}

func TestPaperConfigurationsFitKraken(t *testing.T) {
	// Every configuration in Figures 10/11 must fit the real machine —
	// otherwise our reproduction would be simulating impossible runs.
	mem := KrakenMemory()
	for _, m := range []int{23040, 92160, 184320, 368640, 737280} {
		w := wl(m, 4608, qr.HierarchicalTree, 192, 48, 12)
		if ok, peak := Feasible(w, Kraken(768), mem); !ok {
			t.Fatalf("m=%d infeasible on 768 nodes (peak %d)", m, peak)
		}
	}
	for _, cores := range []int{480, 1920, 3840, 7680, 15360} {
		w := wl(368640, 4608, qr.HierarchicalTree, 192, 48, 12)
		if ok, peak := Feasible(w, Kraken(cores/12), mem); !ok {
			t.Fatalf("cores=%d infeasible (peak %d)", cores, peak)
		}
	}
}
