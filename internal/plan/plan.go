// Package plan closes the loop the ROADMAP calls the trace-driven planner:
// given a job's shape and a measured machine model, it enumerates candidate
// algorithm configurations — flat / binary / hierarchical reduction trees
// with a sweep of the domain height h, an nb/ib tile grid, and rank counts
// up to the fleet size — scores every candidate by discrete-event simulation
// of the exact task DAG (internal/simulate), and returns the winner with a
// scored rationale. The paper fixes h, the tree and the tile sizes by hand
// (its Fig. 9 is a manual sweep); CAQR-style analyses show the optimum
// depends on the matrix shape and the network's α–β, which qrserve now
// measures live (internal/obs), so the sweep can run per job.
//
// The hand-default configuration is always enumerated and scored first, so
// the chosen candidate can never simulate slower than the default — the
// planner degrades to a no-op, never to a regression. Decide is pure and
// deterministic in (spec, machine, config); Planner adds a bounded LRU cache
// keyed by machine-model epoch and rounded job shape so warm servers plan in
// microseconds.
package plan

import (
	"fmt"
	"sort"

	"pulsarqr/internal/qr"
	"pulsarqr/internal/simulate"
)

// maxPlanDim mirrors the service's admission bound: the planner refuses
// shapes the service would never admit.
const maxPlanDim = 1 << 20

// Spec is the planner's view of one job: just the shape and an optional
// completion target. Everything else about the JobSpec (tenant, data,
// priority) is irrelevant to configuration choice.
type Spec struct {
	// M, N are the matrix dimensions; tall-skinny (M >= N) required.
	M int `json:"m"`
	N int `json:"n"`
	// TargetMS, when positive, is a completion-time target: among candidates
	// predicted to finish within it, the planner picks the one using the
	// fewest ranks (then the fastest), freeing fleet capacity for other
	// tenants. Zero means fastest-wins.
	TargetMS float64 `json:"target_ms,omitempty"`
}

func (s Spec) validate() error {
	if s.M < 1 || s.N < 1 {
		return fmt.Errorf("plan: invalid shape %dx%d", s.M, s.N)
	}
	if s.M < s.N {
		return fmt.Errorf("plan: shape %dx%d is not tall-skinny (m >= n required)", s.M, s.N)
	}
	if s.M > maxPlanDim || s.N > maxPlanDim {
		return fmt.Errorf("plan: shape %dx%d exceeds limit %d", s.M, s.N, maxPlanDim)
	}
	if s.TargetMS < 0 {
		return fmt.Errorf("plan: negative target_ms %g", s.TargetMS)
	}
	return nil
}

// Candidate is one scored configuration. The wire shape is flat and
// self-describing so it can ride job views and the /v1/plan response.
type Candidate struct {
	Tree  string `json:"tree"` // "hierarchical", "flat", "binary"
	NB    int    `json:"nb"`
	IB    int    `json:"ib"`
	H     int    `json:"h,omitempty"` // hierarchical domain height; 0 otherwise
	Ranks int    `json:"ranks"`       // nodes the job should span

	PredictedMS     float64 `json:"predicted_ms"`
	PredictedGflops float64 `json:"predicted_gflops"`
	Utilization     float64 `json:"utilization"`
	Tasks           int     `json:"tasks"`
	Messages        int64   `json:"messages"`
}

// Options maps the candidate onto the qr layer's configuration.
func (c Candidate) Options() qr.Options {
	opts := qr.DefaultOptions()
	if c.NB > 0 {
		opts.NB = c.NB
	}
	if c.IB > 0 {
		opts.IB = c.IB
	}
	if t, err := qr.ParseTree(c.Tree); err == nil {
		opts.Tree = t
	}
	if c.H > 0 {
		opts.H = c.H
	}
	return opts
}

// Describe renders the candidate's configuration as one short token string.
func (c Candidate) Describe() string {
	if c.Tree == qr.HierarchicalTree.String() {
		return fmt.Sprintf("%s h=%d nb=%d ib=%d ranks=%d", c.Tree, c.H, c.NB, c.IB, c.Ranks)
	}
	return fmt.Sprintf("%s nb=%d ib=%d ranks=%d", c.Tree, c.NB, c.IB, c.Ranks)
}

// Decision is one planning outcome: the chosen configuration, the
// hand-default it was measured against, and the accounting that makes the
// choice auditable.
type Decision struct {
	M int `json:"m"`
	N int `json:"n"`

	Choice  Candidate `json:"choice"`
	Default Candidate `json:"default"`
	// SpeedupVsDefault is default predicted time over choice predicted time
	// (>= 1 whenever both were simulated and no completion target bent the
	// choice toward frugality).
	SpeedupVsDefault float64 `json:"speedup_vs_default,omitempty"`
	// Ranked holds the best-scoring candidates in predicted order (the
	// choice may differ under a TargetMS frugality rule).
	Ranked []Candidate `json:"ranked,omitempty"`

	Considered int `json:"considered"`        // configurations enumerated
	Simulated  int `json:"simulated"`         // configurations DES-scored
	Skipped    int `json:"skipped,omitempty"` // task graph over the simulation budget

	Epoch     uint64  `json:"epoch,omitempty"`      // machine-model epoch the plan used
	FromCache bool    `json:"from_cache,omitempty"` // served from the plan cache
	PlanMS    float64 `json:"plan_ms"`              // wall time spent planning
	Rationale string  `json:"rationale"`
}

// Config bounds the candidate sweep. The zero value takes the defaults.
type Config struct {
	// NBGrid is the tile-size sweep; ib is derived as nb/4 (the paper's
	// ratio: nb=192, ib=48). Nil takes DefaultNBGrid.
	NBGrid []int
	// HGrid is the hierarchical domain-height sweep. Nil takes DefaultHGrid.
	HGrid []int
	// TopK bounds Decision.Ranked; <= 0 takes 8.
	TopK int
	// MaxTasksPerCandidate skips configurations whose task graph would
	// exceed this many tasks (a DES of that graph costs the memory of the
	// graph itself); <= 0 takes 4M.
	MaxTasksPerCandidate int64
	// MaxTasksTotal bounds the whole sweep's simulated work, so a planning
	// call can never become a denial of service; <= 0 takes 24M. The
	// default configuration is exempt: it is always scored when it fits the
	// per-candidate cap.
	MaxTasksTotal int64
	// Profile selects the simulated runtime; the zero value is
	// SystolicProfile, which models this runtime.
	Profile simulate.Profile
}

// DefaultNBGrid spans laptop tiles to the paper's 192/240-class tiles.
var DefaultNBGrid = []int{32, 48, 64, 96, 128, 192, 256}

// DefaultHGrid spans the paper's h sweep (Fig. 9 explores 6 and 12 at
// Kraken scale; small fleets want smaller domains).
var DefaultHGrid = []int{2, 4, 6, 8, 12}

func (c Config) withDefaults() Config {
	if len(c.NBGrid) == 0 {
		c.NBGrid = DefaultNBGrid
	}
	if len(c.HGrid) == 0 {
		c.HGrid = DefaultHGrid
	}
	if c.TopK <= 0 {
		c.TopK = 8
	}
	if c.MaxTasksPerCandidate <= 0 {
		c.MaxTasksPerCandidate = 4 << 20
	}
	if c.MaxTasksTotal <= 0 {
		c.MaxTasksTotal = 24 << 20
	}
	return c
}

// defaultCandidate is the hand-default configuration: the library defaults
// on the whole fleet — exactly what dispatch runs when autotuning is off.
func defaultCandidate(ranks int) Candidate {
	o := qr.DefaultOptions()
	return Candidate{Tree: o.Tree.String(), NB: o.NB, IB: o.IB, H: o.H, Ranks: ranks}
}

// estTasks approximates the task-graph size of shape (m, n) at tile size nb:
// per panel j, one kernel per remaining tile row for the panel itself and
// for each trailing column.
func estTasks(m, n, nb int) int64 {
	mt := int64((m + nb - 1) / nb)
	nt := int64((n + nb - 1) / nb)
	var t int64
	for j := int64(0); j < nt; j++ {
		t += (mt - j) * (nt - j)
		if t < 0 {
			return 1 << 62 // overflow guard on absurd shapes
		}
	}
	return t
}

// rankSweep returns the node counts to consider: the fleet, halving down to
// one. Descending, so the full fleet wins exact predicted-time ties.
func rankSweep(fleet int) []int {
	var out []int
	for r := fleet; r >= 1; r /= 2 {
		out = append(out, r)
		if r == 1 {
			break
		}
	}
	return out
}

// enumerate generates the candidate configurations in a fixed deterministic
// order: the hand-default first, then rank sweep (descending) × nb grid ×
// {flat, binary, hierarchical h sweep}. Duplicates of the default are
// suppressed.
func enumerate(spec Spec, mach simulate.Machine, cfg Config) []Candidate {
	def := defaultCandidate(mach.Nodes)
	out := []Candidate{def}
	type ckey struct {
		tree      string
		nb, h, rk int
	}
	seen := map[ckey]bool{{def.Tree, def.NB, def.H, def.Ranks}: true}
	add := func(c Candidate) {
		k := ckey{c.Tree, c.NB, c.H, c.Ranks}
		if !seen[k] {
			seen[k] = true
			out = append(out, c)
		}
	}
	for _, ranks := range rankSweep(mach.Nodes) {
		for _, nb := range cfg.NBGrid {
			if nb > spec.M {
				continue // a tile taller than the matrix
			}
			mt := (spec.M + nb - 1) / nb
			if ranks > mt {
				continue // more nodes than tile rows: guaranteed idle nodes
			}
			ib := nb / 4
			if ib < 4 {
				ib = 4
			}
			add(Candidate{Tree: qr.FlatTree.String(), NB: nb, IB: ib, Ranks: ranks})
			if mt >= 2 {
				add(Candidate{Tree: qr.BinaryTree.String(), NB: nb, IB: ib, Ranks: ranks})
			}
			for _, h := range cfg.HGrid {
				if h < 2 || h >= mt {
					continue // h >= mt degenerates to the flat tree
				}
				add(Candidate{Tree: qr.HierarchicalTree.String(), NB: nb, IB: ib, H: h, Ranks: ranks})
			}
		}
	}
	return out
}

// Decide runs the full candidate sweep for one spec on one machine. It is
// pure and deterministic: the same (spec, mach, cfg) always returns the
// same Decision (PlanMS excepted — Decide leaves it zero; callers that time
// the call fill it in).
func Decide(spec Spec, mach simulate.Machine, cfg Config) (Decision, error) {
	if err := spec.validate(); err != nil {
		return Decision{}, err
	}
	if err := mach.Validate(); err != nil {
		return Decision{}, err
	}
	cfg = cfg.withDefaults()

	cands := enumerate(spec, mach, cfg)
	scored := make([]Candidate, 0, len(cands))
	var spent int64
	skipped := 0
	for i, c := range cands {
		est := estTasks(spec.M, spec.N, c.NB)
		// The default (i == 0) is exempt from the total budget so it is
		// always scored when it is simulatable at all; everything else
		// competes for the remaining budget in enumeration order.
		if est > cfg.MaxTasksPerCandidate || (i > 0 && spent+est > cfg.MaxTasksTotal) {
			skipped++
			continue
		}
		spent += est
		m2 := mach
		m2.Nodes = c.Ranks
		w := simulate.Workload{M: spec.M, N: spec.N, Opts: c.Options()}
		r := simulate.Run(w, m2, cfg.Profile)
		c.PredictedMS = r.Seconds * 1e3
		c.PredictedGflops = r.Gflops
		c.Utilization = r.Utilization
		c.Tasks = r.Tasks
		c.Messages = r.Messages
		scored = append(scored, c)
	}

	d := Decision{M: spec.M, N: spec.N, Considered: len(cands), Simulated: len(scored), Skipped: skipped}
	if len(scored) == 0 {
		// Nothing fit the simulation budget (an enormous shape): keep the
		// hand-default rather than guessing — the planner must degrade to a
		// no-op, never to an unscored gamble.
		d.Choice = cands[0]
		d.Default = cands[0]
		d.Rationale = fmt.Sprintf("shape %dx%d too large to simulate within budget; keeping defaults (%s)",
			spec.M, spec.N, d.Choice.Describe())
		return d, nil
	}

	// Stable sort by predicted time: enumeration order (default first, full
	// fleet first) breaks exact ties, which keeps the decision deterministic.
	ranked := make([]Candidate, len(scored))
	copy(ranked, scored)
	sort.SliceStable(ranked, func(a, b int) bool { return ranked[a].PredictedMS < ranked[b].PredictedMS })

	// The default is scored[0] whenever it was simulatable (it is enumerated
	// first and exempt from the total budget).
	def := scored[0]
	if def.Tree != cands[0].Tree || def.NB != cands[0].NB || def.Ranks != cands[0].Ranks {
		def = cands[0] // default itself exceeded the per-candidate cap
	}
	d.Default = def

	choice := ranked[0]
	frugal := false
	if spec.TargetMS > 0 {
		// Frugality rule: among candidates meeting the target, prefer the
		// fewest ranks, then the fastest. The fastest candidate is feasible
		// whenever any is, so a feasible set is never empty by accident.
		best := -1
		for i, c := range ranked {
			if c.PredictedMS > spec.TargetMS {
				continue
			}
			if best < 0 || c.Ranks < ranked[best].Ranks {
				best = i
			}
		}
		if best >= 0 && best != 0 {
			choice = ranked[best]
			frugal = true
		}
	}
	d.Choice = choice
	if choice.PredictedMS > 0 && def.PredictedMS > 0 {
		d.SpeedupVsDefault = def.PredictedMS / choice.PredictedMS
	}
	if len(ranked) > cfg.TopK {
		ranked = ranked[:cfg.TopK]
	}
	d.Ranked = ranked

	switch {
	case frugal:
		d.Rationale = fmt.Sprintf("%s: predicted %.3gms meets target %.3gms with the fewest ranks (default %s: %.3gms); %d candidates, %d simulated",
			choice.Describe(), choice.PredictedMS, spec.TargetMS, def.Describe(), def.PredictedMS, d.Considered, d.Simulated)
	default:
		d.Rationale = fmt.Sprintf("%s: predicted %.3gms, %.2fx over default %s (%.3gms); %d candidates, %d simulated, %d over budget",
			choice.Describe(), choice.PredictedMS, d.SpeedupVsDefault, def.Describe(), def.PredictedMS,
			d.Considered, d.Simulated, d.Skipped)
	}
	return d, nil
}
