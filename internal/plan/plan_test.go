package plan

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"pulsarqr/internal/simulate"
)

// randMachine draws a valid machine from a wide but realistic envelope:
// 1–8 nodes, 2–9 cores, per-core peaks spanning two decades, α–β drawn
// log-uniform across the LAN-to-HPC range. Every draw must pass Validate —
// the property tests only make sense on machines the planner would accept.
func randMachine(rng *rand.Rand) simulate.Machine {
	logU := func(lo, hi float64) float64 {
		return math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
	}
	m := simulate.LocalHost(1+rng.Intn(8), 2+rng.Intn(8))
	m.CoreGflops = logU(0.5, 50)
	m.AlphaInter = logU(1e-7, 1e-3)
	m.BetaInter = logU(1e-11, 1e-7)
	m.HopIntra = logU(1e-8, 1e-5)
	m.TaskOverhead = logU(1e-7, 1e-4)
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

// The tentpole's core property: across a randomized sweep of shapes and
// machines, the planner's chosen configuration never simulates slower than
// the hand-default on the same machine, and planning is deterministic — the
// same (spec, machine) pair always yields the identical Decision.
func TestDecideNeverSlowerThanDefaultAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := Config{} // library defaults, same as dispatch
	for i := 0; i < 30; i++ {
		mach := randMachine(rng)
		n := 16 * (1 + rng.Intn(16)) // up to 256
		m := n * (1 + rng.Intn(16))  // up to 4096, always >= n
		spec := Spec{M: m, N: n}

		d1, err := Decide(spec, mach, cfg)
		if err != nil {
			t.Fatalf("iter %d: Decide(%dx%d): %v", i, m, n, err)
		}
		d2, err := Decide(spec, mach, cfg)
		if err != nil {
			t.Fatalf("iter %d: repeat Decide: %v", i, err)
		}
		if !reflect.DeepEqual(d1, d2) {
			t.Fatalf("iter %d: Decide is not deterministic for %dx%d on %+v:\n d1=%+v\n d2=%+v",
				i, m, n, mach, d1, d2)
		}
		if d1.Simulated == 0 {
			continue // budget exhausted: the planner kept defaults, nothing to compare
		}
		if d1.Choice.PredictedMS > d1.Default.PredictedMS*(1+1e-9) {
			t.Fatalf("iter %d: chosen %s (%.6f ms) slower than default %s (%.6f ms) for %dx%d on %+v",
				i, d1.Choice.Describe(), d1.Choice.PredictedMS,
				d1.Default.Describe(), d1.Default.PredictedMS, m, n, mach)
		}
		if d1.SpeedupVsDefault < 1-1e-9 {
			t.Fatalf("iter %d: speedup %g < 1 without a completion target", i, d1.SpeedupVsDefault)
		}
	}
}

// With a completion target, the planner trades speed for frugality: the
// chosen candidate still meets the target but never uses more ranks than the
// unconstrained fastest choice.
func TestDecideTargetFrugality(t *testing.T) {
	mach := simulate.Kraken(16)
	spec := Spec{M: 8192, N: 256}
	fastest, err := Decide(spec, mach, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// A target 4x looser than the fastest prediction leaves room to shrink.
	spec.TargetMS = fastest.Choice.PredictedMS * 4
	frugal, err := Decide(spec, mach, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if frugal.Choice.PredictedMS > spec.TargetMS {
		t.Fatalf("frugal choice %s misses target %.3f ms (predicted %.3f ms)",
			frugal.Choice.Describe(), spec.TargetMS, frugal.Choice.PredictedMS)
	}
	if frugal.Choice.Ranks > fastest.Choice.Ranks {
		t.Fatalf("frugal choice uses %d ranks, more than the unconstrained %d",
			frugal.Choice.Ranks, fastest.Choice.Ranks)
	}
}

func TestDecideRejectsBadInputs(t *testing.T) {
	mach := simulate.LocalHost(2, 3)
	bad := []Spec{
		{M: 0, N: 1}, {M: 1, N: 0}, {M: -4, N: -4},
		{M: 64, N: 128},               // wide: not tall-skinny
		{M: maxPlanDim + 1, N: 1},     // over the admission bound
		{M: 128, N: 64, TargetMS: -1}, // negative target
	}
	for _, s := range bad {
		if _, err := Decide(s, mach, Config{}); err == nil {
			t.Errorf("Decide accepted invalid spec %+v", s)
		}
	}
	poisoned := mach
	poisoned.CoreGflops = math.NaN()
	if _, err := Decide(Spec{M: 128, N: 64}, poisoned, Config{}); err == nil {
		t.Error("Decide accepted a NaN machine")
	}
}

// A shape too large for any candidate's task budget must degrade to the
// hand-default — never an error, never an unscored guess presented as a win.
func TestDecideOverBudgetKeepsDefaults(t *testing.T) {
	d, err := Decide(Spec{M: 1 << 19, N: 1 << 14}, simulate.Kraken(4), Config{
		MaxTasksPerCandidate: 100, MaxTasksTotal: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Simulated != 0 {
		t.Fatalf("expected zero simulated candidates, got %d", d.Simulated)
	}
	if !reflect.DeepEqual(d.Choice, d.Default) {
		t.Fatalf("over-budget choice %+v differs from default %+v", d.Choice, d.Default)
	}
	if d.Choice.Tree == "" || d.Choice.NB == 0 {
		t.Fatalf("over-budget default not filled in: %+v", d.Choice)
	}
}

func TestRoundDim(t *testing.T) {
	for x := 1; x <= 128; x++ {
		if RoundDim(x) != x {
			t.Fatalf("RoundDim(%d) = %d, want identity below 129", x, RoundDim(x))
		}
	}
	cases := map[int]int{129: 160, 1000: 1024, 1024: 1024, 1025: 1280, 16384: 16384}
	for in, want := range cases {
		if got := RoundDim(in); got != want {
			t.Errorf("RoundDim(%d) = %d, want %d", in, got, want)
		}
	}
	// Never rounds down, and stays monotone — both needed so a cached plan's
	// tile grid fits the real matrix and M >= N survives rounding.
	prev := 0
	for x := 1; x < 100000; x += 7 {
		r := RoundDim(x)
		if r < x {
			t.Fatalf("RoundDim(%d) = %d rounds down", x, r)
		}
		if r < prev {
			t.Fatalf("RoundDim not monotone at %d: %d < %d", x, r, prev)
		}
		prev = r
	}
}

func TestPlannerCache(t *testing.T) {
	p := NewPlanner(Config{}, 8)
	mach := simulate.LocalHost(2, 3)

	d1, err := p.Plan(Spec{M: 1000, N: 100}, mach, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d1.FromCache {
		t.Fatal("first plan claimed a cache hit")
	}
	// Same epoch, near-identical shape (1000 → 1024 rounds like 1010).
	d2, err := p.Plan(Spec{M: 1010, N: 100}, mach, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.FromCache {
		t.Fatal("rounded-shape replan missed the cache")
	}
	if d2.Choice != d1.Choice {
		t.Fatalf("cache returned a different choice: %+v vs %+v", d2.Choice, d1.Choice)
	}
	// New epoch: the model moved, the cache must not serve the stale plan.
	d3, err := p.Plan(Spec{M: 1000, N: 100}, mach, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d3.FromCache {
		t.Fatal("epoch change served a stale cached plan")
	}
	computed, hits := p.Stats()
	if computed != 2 || hits != 1 {
		t.Fatalf("stats = (%d computed, %d hits), want (2, 1)", computed, hits)
	}
}

// The LRU must bound the cache: cap+1 distinct keys evict the oldest.
func TestPlannerCacheEviction(t *testing.T) {
	p := NewPlanner(Config{}, 2)
	mach := simulate.LocalHost(1, 2)
	shapes := []Spec{{M: 256, N: 32}, {M: 512, N: 32}, {M: 768, N: 32}}
	for _, s := range shapes {
		if _, err := p.Plan(s, mach, 1); err != nil {
			t.Fatal(err)
		}
	}
	// The first shape was evicted: replanning it recomputes.
	d, err := p.Plan(shapes[0], mach, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.FromCache {
		t.Fatal("evicted entry served from cache")
	}
	// The last shape is still resident.
	d, err = p.Plan(shapes[2], mach, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !d.FromCache {
		t.Fatal("resident entry missed the cache")
	}
}
