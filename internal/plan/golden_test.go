package plan

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pulsarqr/internal/simulate"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the planner golden files")

// slowLink is the degenerate model: a small fleet behind a WAN-class link
// (5 ms latency, 1 µs/byte). Communication dominates, so the planner should
// pull work onto fewer nodes — the golden file pins that behavior down.
func slowLink() simulate.Machine {
	m := simulate.LocalHost(4, 3)
	m.AlphaInter = 5e-3
	m.BetaInter = 1e-6
	return m
}

// The golden decisions freeze the planner's observable behavior on three
// machine models across three shapes: a supercomputer slice (kraken16), the
// test box (localhost2x3), and a fleet strangled by its network (slowlink).
// A change here is a planner behavior change — deliberate ones re-bless with
// go test ./internal/plan -run Golden -update-golden.
func TestDecideGolden(t *testing.T) {
	machines := []struct {
		name string
		mach simulate.Machine
	}{
		{"kraken16", simulate.Kraken(16)},
		{"localhost2x3", simulate.LocalHost(2, 3)},
		{"slowlink", slowLink()},
	}
	specs := []Spec{
		{M: 8192, N: 256},  // tall-skinny: the paper's regime
		{M: 1024, N: 1024}, // square: update-dominated
		{M: 512, N: 64},    // small: overhead-sensitive
	}
	for _, mc := range machines {
		for _, spec := range specs {
			name := fmt.Sprintf("%s_%dx%d", mc.name, spec.M, spec.N)
			t.Run(name, func(t *testing.T) {
				d, err := Decide(spec, mc.mach, Config{})
				if err != nil {
					t.Fatal(err)
				}
				// Strip the accounting that legitimately varies with grid
				// defaults; the golden pins the decision, not the sweep size.
				g := goldenDecision{
					Choice:           d.Choice,
					Default:          d.Default,
					SpeedupVsDefault: round4(d.SpeedupVsDefault),
				}
				g.Choice = roundCandidate(g.Choice)
				g.Default = roundCandidate(g.Default)

				path := filepath.Join("testdata", "golden", name+".json")
				got, err := json.MarshalIndent(g, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("%v (run with -update-golden to bless)", err)
				}
				if string(got) != string(want) {
					t.Errorf("planner decision drifted from golden %s:\n got: %s\nwant: %s\n(re-bless with -update-golden if deliberate)",
						path, got, want)
				}
			})
		}
	}
}

type goldenDecision struct {
	Choice           Candidate `json:"choice"`
	Default          Candidate `json:"default"`
	SpeedupVsDefault float64   `json:"speedup_vs_default"`
}

// roundCandidate truncates the float fields to 4 decimals so the golden
// comparison is insensitive to last-ulp drift in the DES float accumulation
// while still catching any real prediction change.
func roundCandidate(c Candidate) Candidate {
	c.PredictedMS = round4(c.PredictedMS)
	c.PredictedGflops = round4(c.PredictedGflops)
	c.Utilization = round4(c.Utilization)
	return c
}

func round4(v float64) float64 {
	return float64(int64(v*1e4+0.5)) / 1e4
}
