package plan

import (
	"math/bits"
	"sync"
	"time"

	"pulsarqr/internal/simulate"
)

// DefaultCacheCap bounds the planner's decision cache. Decisions are small
// (a few candidates each) so the cap is about key diversity, not memory.
const DefaultCacheCap = 128

// Planner wraps Decide with a bounded LRU cache keyed by machine-model
// epoch and rounded job shape, so a warm server plans repeat shapes in
// microseconds instead of re-running the DES sweep per job.
type Planner struct {
	cfg Config
	cap int

	mu       sync.Mutex
	entries  map[cacheKey]Decision
	order    []cacheKey // LRU order, oldest first
	computed int64
	hits     int64
}

type cacheKey struct {
	epoch  uint64
	m, n   int
	ranks  int
	cores  int
	target int64 // TargetMS in whole ms; shapes with targets don't share entries
}

// NewPlanner builds a Planner; cacheCap <= 0 takes DefaultCacheCap.
func NewPlanner(cfg Config, cacheCap int) *Planner {
	if cacheCap <= 0 {
		cacheCap = DefaultCacheCap
	}
	return &Planner{cfg: cfg, cap: cacheCap, entries: make(map[cacheKey]Decision)}
}

// RoundDim rounds a dimension up to 3 significant bits (1000 and 1010 both
// become 1024), so near-identical job shapes share one cache entry. The
// rounding is monotone and never rounds down, so M >= N survives it and a
// cached plan's tile grid is never taller than the real matrix.
func RoundDim(x int) int {
	if x <= 128 {
		return x
	}
	shift := bits.Len(uint(x)) - 3
	step := 1 << shift
	return (x + step - 1) >> shift << shift
}

// Plan returns the decision for spec on mach at the given machine-model
// epoch, consulting the cache first. Cache hits return a copy with
// FromCache set; misses run the full Decide sweep and record PlanMS.
func (p *Planner) Plan(spec Spec, mach simulate.Machine, epoch uint64) (Decision, error) {
	rounded := spec
	rounded.M = RoundDim(spec.M)
	rounded.N = RoundDim(spec.N)
	key := cacheKey{
		epoch: epoch,
		m:     rounded.M, n: rounded.N,
		ranks: mach.Nodes, cores: mach.CoresPerNode,
		target: int64(spec.TargetMS),
	}

	p.mu.Lock()
	if d, ok := p.entries[key]; ok {
		p.touch(key)
		p.hits++
		p.mu.Unlock()
		d.FromCache = true
		return d, nil
	}
	p.mu.Unlock()

	start := time.Now()
	d, err := Decide(rounded, mach, p.cfg)
	if err != nil {
		return Decision{}, err
	}
	d.Epoch = epoch
	d.PlanMS = float64(time.Since(start)) / 1e6

	p.mu.Lock()
	p.computed++
	if _, ok := p.entries[key]; !ok {
		if len(p.order) >= p.cap {
			oldest := p.order[0]
			p.order = p.order[1:]
			delete(p.entries, oldest)
		}
		p.order = append(p.order, key)
	} else {
		p.touch(key)
	}
	p.entries[key] = d
	p.mu.Unlock()
	return d, nil
}

// touch moves key to the back of the LRU order; caller holds p.mu. O(n) at
// a cap of 128 keys is cheaper than a list's pointer chasing.
func (p *Planner) touch(key cacheKey) {
	for i, k := range p.order {
		if k == key {
			p.order = append(append(p.order[:i:i], p.order[i+1:]...), key)
			return
		}
	}
}

// Stats reports how many plans were computed fresh and how many were served
// from cache.
func (p *Planner) Stats() (computed, hits int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.computed, p.hits
}
