package obs

import (
	"sync"
	"time"
)

// Phase is one stop on a request's path through the service.
type Phase uint8

const (
	PhaseSubmitted  Phase = iota // validated, about to be queued
	PhaseQueued                  // waiting in the admission queue
	PhaseDispatched              // popped by a dispatcher, session opening
	PhaseRunning                 // factorization executing
	PhaseGathering               // run finished, collecting trace shards
	PhaseTerminal                // done / failed / canceled / expired
	numPhases
)

func (p Phase) String() string {
	return [numPhases]string{"submitted", "queued", "dispatched", "running", "gathering", "terminal"}[p]
}

// Span indexes the per-phase duration accumulators. Submitted and Queued
// both count as queue wait — the distinction a client cares about is time
// before a dispatcher picked the job up.
type Span uint8

const (
	SpanQueueWait Span = iota
	SpanDispatch
	SpanRun
	SpanGather
	numSpans
)

// spanOf maps a phase to the span its dwell time accrues to; terminal
// accrues nowhere.
func spanOf(p Phase) (Span, bool) {
	switch p {
	case PhaseSubmitted, PhaseQueued:
		return SpanQueueWait, true
	case PhaseDispatched:
		return SpanDispatch, true
	case PhaseRunning:
		return SpanRun, true
	case PhaseGathering:
		return SpanGather, true
	}
	return 0, false
}

// Lifecycle tracks one request's phase transitions and accumulates the time
// spent in each phase. The zero value is ready to use; marking is a mutex
// hold plus array arithmetic — no allocation, cheap enough to stay always
// on. Retried jobs simply re-enter earlier phases: the accumulators keep
// summing, so span totals cover all attempts and their sum always equals
// the submitted→terminal wall time exactly (both sides telescope over the
// same instants).
type Lifecycle struct {
	mu      sync.Mutex
	started bool
	cur     Phase
	curAt   time.Time
	began   time.Time
	ended   time.Time
	dur     [numSpans]time.Duration
}

// Mark transitions to phase p now. The first call starts the clock; calls
// after the terminal mark are ignored.
func (l *Lifecycle) Mark(p Phase) { l.MarkAt(p, time.Now()) }

// MarkAt is Mark with an explicit instant (tests).
func (l *Lifecycle) MarkAt(p Phase, now time.Time) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.started {
		l.started = true
		l.began = now
		l.cur = p
		l.curAt = now
		if p == PhaseTerminal {
			l.ended = now
		}
		return
	}
	if !l.ended.IsZero() {
		return
	}
	if sp, ok := spanOf(l.cur); ok {
		if d := now.Sub(l.curAt); d > 0 {
			l.dur[sp] += d
		}
	}
	l.cur = p
	l.curAt = now
	if p == PhaseTerminal {
		l.ended = now
	}
}

// Spans is a snapshot of the accumulated per-phase durations. For a live
// request the current phase's partial dwell is included, so
// QueueWait+Dispatch+Run+Gather == Total holds at every instant.
type Spans struct {
	Phase     Phase
	Terminal  bool
	QueueWait time.Duration
	Dispatch  time.Duration
	Run       time.Duration
	Gather    time.Duration
	Total     time.Duration
}

// Started reports whether the lifecycle has seen its first mark.
func (l *Lifecycle) Started() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.started
}

// Snapshot returns the current span accounting (zero value before the first
// mark).
func (l *Lifecycle) Snapshot() Spans {
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.started {
		return Spans{}
	}
	dur := l.dur
	end := l.ended
	if end.IsZero() {
		if sp, ok := spanOf(l.cur); ok {
			if d := now.Sub(l.curAt); d > 0 {
				dur[sp] += d
			}
		}
		end = now
	}
	return Spans{
		Phase:     l.cur,
		Terminal:  !l.ended.IsZero(),
		QueueWait: dur[SpanQueueWait],
		Dispatch:  dur[SpanDispatch],
		Run:       dur[SpanRun],
		Gather:    dur[SpanGather],
		Total:     end.Sub(l.began),
	}
}

// SpanReport is the JSON shape of a Spans snapshot on the HTTP surface.
type SpanReport struct {
	Phase       string  `json:"phase"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	DispatchMS  float64 `json:"dispatch_ms"`
	RunMS       float64 `json:"run_ms"`
	GatherMS    float64 `json:"gather_ms,omitempty"`
	TotalMS     float64 `json:"total_ms"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Report converts the snapshot to its JSON shape.
func (s Spans) Report() SpanReport {
	return SpanReport{
		Phase:       s.Phase.String(),
		QueueWaitMS: ms(s.QueueWait),
		DispatchMS:  ms(s.Dispatch),
		RunMS:       ms(s.Run),
		GatherMS:    ms(s.Gather),
		TotalMS:     ms(s.Total),
	}
}
