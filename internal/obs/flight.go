package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultFlightCap is the default flight-recorder bound in events. At ~150
// bytes per event the default ring tops out around 150 KiB — small enough
// to sit resident forever, large enough to cover the minutes before a
// failure at service event rates.
const DefaultFlightCap = 1024

// flightStripes is the ring's stripe count; events hash to a stripe by
// their job/session identity so concurrent emitters rarely contend on one
// mutex. Same design as trace.Recorder, sized down for the much lower
// service event rate.
const flightStripes = 8

// Ring is the flight recorder: a bounded, striped ring of recent events.
// When a stripe fills, its oldest event is overwritten and the drop counter
// is bumped — pushing never blocks and never grows the ring.
type Ring struct {
	perStripe int
	drops     atomic.Int64
	stripes   [flightStripes]flightStripe
}

type flightStripe struct {
	mu sync.Mutex
	ev []Event
	n  int // total events ever pushed to this stripe
}

// NewRing builds a ring bounded at capacity events (rounded up to a
// multiple of the stripe count); capacity <= 0 takes DefaultFlightCap.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultFlightCap
	}
	per := (capacity + flightStripes - 1) / flightStripes
	if per < 1 {
		per = 1
	}
	return &Ring{perStripe: per}
}

// Cap returns the ring's event bound.
func (r *Ring) Cap() int { return r.perStripe * flightStripes }

func stripeOf(e Event) int {
	h := uint32(e.Job)*2654435761 + uint32(e.Rank+1)*40503
	for i := 0; i < len(e.Session); i++ {
		h = h*31 + uint32(e.Session[i])
	}
	return int(h % flightStripes)
}

// Push records one event, overwriting the stripe's oldest when full.
func (r *Ring) Push(e Event) {
	st := &r.stripes[stripeOf(e)]
	st.mu.Lock()
	if len(st.ev) < r.perStripe {
		st.ev = append(st.ev, e)
	} else {
		st.ev[st.n%r.perStripe] = e
		r.drops.Add(1)
	}
	st.n++
	st.mu.Unlock()
}

// Drops returns how many events were overwritten — the ring's honesty
// counter, exported so a tail with loss is never presented as complete.
func (r *Ring) Drops() int64 { return r.drops.Load() }

// Len returns the number of events currently held.
func (r *Ring) Len() int {
	n := 0
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		n += len(st.ev)
		st.mu.Unlock()
	}
	return n
}

// Tail returns the most recent n events in time order (oldest of the tail
// first). n <= 0 returns everything held.
func (r *Ring) Tail(n int) []Event {
	return r.TailMatch(n, nil)
}

// TailMatch returns the most recent n events satisfying keep (nil keeps
// all), in time order.
func (r *Ring) TailMatch(n int, keep func(Event) bool) []Event {
	var all []Event
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for _, e := range st.ev {
			if keep == nil || keep(e) {
				all = append(all, e)
			}
		}
		st.mu.Unlock()
	}
	sort.Slice(all, func(a, b int) bool { return all[a].At.Before(all[b].At) })
	if n > 0 && len(all) > n {
		all = all[len(all)-n:]
	}
	return all
}
