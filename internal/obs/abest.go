package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultHalfLife is the estimator's sample decay: a sample half this old
// carries half the weight, so the model tracks a changing network (a link
// that degrades, a fleet that moves) within a few half-lives.
const DefaultHalfLife = 5 * time.Minute

// samplesPerLink bounds one link's sample ring; older samples are
// overwritten, which combined with the decay makes the estimator's memory
// and its estimate both bounded and recent.
const samplesPerLink = 512

// LinkModel is one peer link's α–β estimate: transfers to that peer cost
// Alpha + Beta·bytes seconds. This is the wire shape on /v1/machine-model
// and in the persisted model file.
type LinkModel struct {
	Peer    int     `json:"peer"`
	Alpha   float64 `json:"alpha_seconds"`
	Beta    float64 `json:"beta_seconds_per_byte"`
	Samples int64   `json:"samples"`
}

type abSample struct {
	bytes float64
	sec   float64
	at    time.Time
}

type linkEst struct {
	ring     []abSample
	next     int
	n        int64 // samples ever added
	prior    LinkModel
	hasPrior bool
}

// ABEstimator folds (bytes, duration) transfer observations into per-link
// α–β estimates by weighted robust regression: weights decay exponentially
// with sample age (half-life), and two IRLS rounds with Huber downweighting
// keep stragglers — a GC pause inside one recv, a retransmit burst — from
// dragging the fit. Zero-byte samples (barrier waits) pin the intercept α;
// payload-bearing samples identify the slope β.
type ABEstimator struct {
	halfLife time.Duration
	total    atomic.Int64 // samples ever accepted, across all links

	mu    sync.Mutex
	links map[int]*linkEst
}

// NewABEstimator builds an estimator; halfLife <= 0 takes DefaultHalfLife.
func NewABEstimator(halfLife time.Duration) *ABEstimator {
	if halfLife <= 0 {
		halfLife = DefaultHalfLife
	}
	return &ABEstimator{halfLife: halfLife, links: map[int]*linkEst{}}
}

// Add records one observed transfer to peer: bytes payload delivered in d.
// bytes == 0 is a latency-only observation (barrier wait). Non-positive
// durations and negative peers are dropped — they carry no information.
func (e *ABEstimator) Add(peer int, bytes int64, d time.Duration) {
	if e == nil || peer < 0 || bytes < 0 || d <= 0 {
		return
	}
	s := abSample{bytes: float64(bytes), sec: d.Seconds(), at: time.Now()}
	e.mu.Lock()
	le := e.links[peer]
	if le == nil {
		le = &linkEst{}
		e.links[peer] = le
	}
	if len(le.ring) < samplesPerLink {
		le.ring = append(le.ring, s)
	} else {
		le.ring[le.next] = s
		le.next = (le.next + 1) % samplesPerLink
	}
	le.n++
	e.mu.Unlock()
	e.total.Add(1)
}

// Samples returns the total sample count accepted across every link — a
// cheap monotone progress counter the planner uses as its machine-model
// epoch, so plan-cache entries age out as fresh evidence arrives.
func (e *ABEstimator) Samples() int64 {
	if e == nil {
		return 0
	}
	return e.total.Load()
}

// Seed installs persisted or configured link models as priors. A prior
// counts for at most 64 live samples' worth of weight, so fresh traffic
// overrides a stale boot model within its first few jobs.
func (e *ABEstimator) Seed(models []LinkModel) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, m := range models {
		if m.Peer < 0 || m.Alpha < 0 || m.Beta < 0 {
			continue
		}
		le := e.links[m.Peer]
		if le == nil {
			le = &linkEst{}
			e.links[m.Peer] = le
		}
		le.prior = m
		le.hasPrior = true
	}
}

// Link returns the current estimate for one peer.
func (e *ABEstimator) Link(peer int) (LinkModel, bool) {
	if e == nil {
		return LinkModel{}, false
	}
	now := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	le := e.links[peer]
	if le == nil {
		return LinkModel{}, false
	}
	return e.estimate(peer, le, now), true
}

// Links returns every peer's current estimate, sorted by peer rank.
func (e *ABEstimator) Links() []LinkModel {
	if e == nil {
		return nil
	}
	now := time.Now()
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]LinkModel, 0, len(e.links))
	for peer, le := range e.links {
		out = append(out, e.estimate(peer, le, now))
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Peer < out[b].Peer })
	return out
}

// Aggregate reduces the per-link models to one fleet-wide (α, β) — the
// median over links, which is what a homogeneous simulate.Machine wants.
// ok is false when no link has any evidence.
func (e *ABEstimator) Aggregate() (alpha, beta float64, ok bool) {
	links := e.Links()
	if len(links) == 0 {
		return 0, 0, false
	}
	alphas := make([]float64, 0, len(links))
	betas := make([]float64, 0, len(links))
	for _, l := range links {
		alphas = append(alphas, l.Alpha)
		betas = append(betas, l.Beta)
	}
	return median(alphas), median(betas), true
}

func median(v []float64) float64 {
	sort.Float64s(v)
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

// estimate runs the decayed robust fit for one link; e.mu held.
func (e *ABEstimator) estimate(peer int, le *linkEst, now time.Time) LinkModel {
	n := len(le.ring)
	if n == 0 {
		m := le.prior
		m.Peer = peer
		return m
	}
	lambda := math.Ln2 / e.halfLife.Seconds()
	w := make([]float64, n)
	for i, s := range le.ring {
		age := now.Sub(s.at).Seconds()
		if age < 0 {
			age = 0
		}
		w[i] = math.Exp(-lambda * age)
	}
	a, b := fitWLS(le.ring, w)
	// Two IRLS rounds: reweight by Huber's ψ around the median absolute
	// residual and refit, so a handful of wild samples lose their leverage.
	res := make([]float64, n)
	scratch := make([]float64, n)
	wr := make([]float64, n)
	for round := 0; round < 2; round++ {
		for i, s := range le.ring {
			res[i] = math.Abs(s.sec - a - b*s.bytes)
		}
		copy(scratch, res)
		scale := 1.4826 * median(scratch)
		if scale <= 0 {
			break
		}
		k := 1.345 * scale
		for i := range wr {
			wr[i] = w[i]
			if res[i] > k {
				wr[i] *= k / res[i]
			}
		}
		a, b = fitWLS(le.ring, wr)
	}
	if b < 0 {
		// A negative slope is unphysical — the byte spread carried no real
		// bandwidth signal. Fall back to latency-only.
		b = 0
		var sw, sy float64
		for i, s := range le.ring {
			sw += w[i]
			sy += w[i] * s.sec
		}
		if sw > 0 {
			a = sy / sw
		}
	}
	if a < 0 {
		a = 0
	}
	m := LinkModel{Peer: peer, Alpha: a, Beta: b, Samples: le.n}
	if le.hasPrior {
		pn := float64(le.prior.Samples)
		if pn > 64 {
			pn = 64
		}
		if pn < 1 {
			pn = 1
		}
		ln := float64(n)
		m.Alpha = (le.prior.Alpha*pn + a*ln) / (pn + ln)
		m.Beta = (le.prior.Beta*pn + b*ln) / (pn + ln)
		m.Samples += le.prior.Samples
	}
	return m
}

// fitWLS is the weighted least-squares line fit sec = a + b·bytes. A
// degenerate byte spread (all samples the same size — e.g. only barrier
// waits) cannot identify a slope: it returns the weighted mean as a with
// b = 0.
func fitWLS(s []abSample, w []float64) (a, b float64) {
	var sw, sx, sy, sxx, sxy float64
	for i, sm := range s {
		wi := w[i]
		sw += wi
		sx += wi * sm.bytes
		sy += wi * sm.sec
		sxx += wi * sm.bytes * sm.bytes
		sxy += wi * sm.bytes * sm.sec
	}
	if sw <= 0 {
		return 0, 0
	}
	meanx := sx / sw
	meany := sy / sw
	varx := sxx/sw - meanx*meanx
	if varx <= 1e-9*(meanx*meanx+1) {
		return meany, 0
	}
	b = (sxy/sw - meanx*meany) / varx
	a = meany - b*meanx
	return a, b
}

// ModelFile is the persisted machine model, written next to the checkpoint
// directory so a warm server boots calibrated.
type ModelFile struct {
	SavedUnixNano int64       `json:"saved_unix_nano"`
	Links         []LinkModel `json:"links"`
}

// ModelFileName is the file the estimator persists to inside the
// checkpoint directory.
const ModelFileName = "machine_model.json"

// Save writes the current per-link estimates to path atomically
// (temp + rename, same contract as the session checkpoints).
func (e *ABEstimator) Save(path string) error {
	if e == nil {
		return nil
	}
	mf := ModelFile{SavedUnixNano: time.Now().UnixNano(), Links: e.Links()}
	data, err := json.MarshalIndent(mf, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".model-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadModelFile reads a persisted machine model.
func LoadModelFile(path string) (ModelFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ModelFile{}, err
	}
	var mf ModelFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return ModelFile{}, fmt.Errorf("obs: model file %s: %w", path, err)
	}
	return mf, nil
}
