package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// The disabled observability path must be free: emitting through a nil
// observer and marking an always-on lifecycle allocate nothing. This is the
// service-layer counterpart of the kernel allocation guards.
func TestDisabledPathZeroAlloc(t *testing.T) {
	var o *Observer
	ev := Event{Kind: EvQueued, Class: "job", Job: 7, Tenant: "t", Attempt: 1}
	if n := testing.AllocsPerRun(100, func() {
		o.Emit(ev)
	}); n != 0 {
		t.Fatalf("nil Observer.Emit allocates %v per call, want 0", n)
	}
	var l Lifecycle
	l.Mark(PhaseSubmitted)
	if n := testing.AllocsPerRun(100, func() {
		l.Mark(PhaseQueued)
		l.Mark(PhaseRunning)
	}); n != 0 {
		t.Fatalf("Lifecycle.Mark allocates %v per call, want 0", n)
	}
	var est *ABEstimator
	if n := testing.AllocsPerRun(100, func() {
		est.Add(1, 100, time.Millisecond)
	}); n != 0 {
		t.Fatalf("nil ABEstimator.Add allocates %v per call, want 0", n)
	}
}

// Nil-observer accessors must be safe and empty.
func TestNilObserverSafe(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer reports enabled")
	}
	o.Emit(Event{Kind: EvDone})
	o.DumpTail("x", 5)
	if got := o.Tail(5); got != nil {
		t.Fatalf("nil Tail = %v", got)
	}
	if got := o.TailJob(1, 5); got != nil {
		t.Fatalf("nil TailJob = %v", got)
	}
	if ev, dr := o.Stats(); ev != 0 || dr != 0 {
		t.Fatalf("nil Stats = %d, %d", ev, dr)
	}
	if o.Estimator() != nil {
		t.Fatal("nil observer returned an estimator")
	}
	if o.Links() != nil {
		t.Fatal("nil observer returned links")
	}
}

// The flight ring must stay within its bound and count every overwritten
// event — a tail with loss is never silently presented as complete.
func TestFlightRingBoundAndDrops(t *testing.T) {
	const capacity = 64
	r := NewRing(capacity)
	total := r.Cap() * 3
	base := time.Now()
	for i := 0; i < total; i++ {
		r.Push(Event{At: base.Add(time.Duration(i)), Kind: EvQueued, Job: uint32(i)})
	}
	if got := r.Len(); got > r.Cap() {
		t.Fatalf("ring holds %d events, cap %d", got, r.Cap())
	}
	wantDrops := int64(total - r.Len())
	if got := r.Drops(); got != wantDrops {
		t.Fatalf("drops = %d, want %d (pushed %d, resident %d)", got, wantDrops, total, r.Len())
	}
	// The tail is time-ordered and ends at the newest event.
	tail := r.Tail(10)
	if len(tail) != 10 {
		t.Fatalf("tail length %d, want 10", len(tail))
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].At.Before(tail[i-1].At) {
			t.Fatalf("tail out of order at %d", i)
		}
	}
	if tail[len(tail)-1].Job != uint32(total-1) {
		t.Fatalf("tail ends at job %d, want %d", tail[len(tail)-1].Job, total-1)
	}
}

func TestFlightRingConcurrent(t *testing.T) {
	r := NewRing(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Push(Event{At: time.Now(), Kind: EvRunning, Job: uint32(g*1000 + i)})
				if i%64 == 0 {
					r.Tail(16)
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Len() > r.Cap() {
		t.Fatalf("ring grew past cap: %d > %d", r.Len(), r.Cap())
	}
}

// TailJob filters by job id, the shape attached to failed-job records.
func TestTailJob(t *testing.T) {
	o := New(Options{})
	for i := 0; i < 10; i++ {
		o.Emit(Event{Kind: EvQueued, Job: uint32(i % 2)})
	}
	tail := o.TailJob(1, 3)
	if len(tail) != 3 {
		t.Fatalf("tail = %d events, want 3", len(tail))
	}
	for _, e := range tail {
		if e.Job != 1 {
			t.Fatalf("tail leaked job %d", e.Job)
		}
	}
}

// Lifecycle property test: for any transition sequence the accumulated
// spans are non-negative, monotone over time, and their sum equals the
// submitted→terminal wall time exactly.
func TestLifecycleSpanAccounting(t *testing.T) {
	seqs := [][]Phase{
		{PhaseSubmitted, PhaseQueued, PhaseDispatched, PhaseRunning, PhaseGathering, PhaseTerminal},
		{PhaseSubmitted, PhaseQueued, PhaseTerminal}, // dropped at dispatch
		{PhaseSubmitted, PhaseQueued, PhaseDispatched, PhaseRunning, // retry loop
			PhaseQueued, PhaseDispatched, PhaseRunning, PhaseTerminal},
		{PhaseSubmitted, PhaseTerminal},
	}
	for si, seq := range seqs {
		var l Lifecycle
		base := time.Now()
		at := base
		for i, p := range seq {
			at = base.Add(time.Duration(i*i) * 7 * time.Millisecond)
			l.MarkAt(p, at)
		}
		sp := l.Snapshot()
		if !sp.Terminal {
			t.Fatalf("seq %d: not terminal after terminal mark", si)
		}
		for name, d := range map[string]time.Duration{
			"queue_wait": sp.QueueWait, "dispatch": sp.Dispatch, "run": sp.Run, "gather": sp.Gather,
		} {
			if d < 0 {
				t.Fatalf("seq %d: negative %s span %v", si, name, d)
			}
		}
		sum := sp.QueueWait + sp.Dispatch + sp.Run + sp.Gather
		if sum != sp.Total {
			t.Fatalf("seq %d: span sum %v != total %v", si, sum, sp.Total)
		}
		if want := at.Sub(base); sp.Total != want {
			t.Fatalf("seq %d: total %v, want wall %v", si, sp.Total, want)
		}
		// Marks after terminal are ignored.
		l.MarkAt(PhaseRunning, at.Add(time.Hour))
		if sp2 := l.Snapshot(); sp2.Total != sp.Total {
			t.Fatalf("seq %d: post-terminal mark changed total %v -> %v", si, sp.Total, sp2.Total)
		}
	}
}

// A live snapshot includes the current phase's partial dwell, and totals
// only grow.
func TestLifecycleLiveMonotone(t *testing.T) {
	var l Lifecycle
	l.Mark(PhaseSubmitted)
	l.Mark(PhaseQueued)
	s1 := l.Snapshot()
	time.Sleep(2 * time.Millisecond)
	s2 := l.Snapshot()
	if s2.Total < s1.Total || s2.QueueWait < s1.QueueWait {
		t.Fatalf("live totals shrank: %+v -> %+v", s1, s2)
	}
	if sum := s2.QueueWait + s2.Dispatch + s2.Run + s2.Gather; sum != s2.Total {
		t.Fatalf("live span sum %v != total %v", sum, s2.Total)
	}
}

// The slog bridge renders one JSON record per event with the event's
// fields, at a severity matching the kind.
func TestEmitStructuredLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	o := New(Options{Logger: logger})
	o.Emit(Event{Kind: EvShed, Class: "batch", Tenant: "acme", RetryS: 3, Detail: "capacity"})
	o.Emit(Event{Kind: EvDone, Job: 42, DurMS: 12.5})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2:\n%s", len(lines), buf.String())
	}
	var shed map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &shed); err != nil {
		t.Fatalf("bad JSON log line: %v", err)
	}
	if shed["msg"] != string(EvShed) || shed["level"] != "WARN" ||
		shed["class"] != "batch" || shed["tenant"] != "acme" || shed["retry_after_s"] != float64(3) {
		t.Fatalf("shed record = %v", shed)
	}
	var done map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &done); err != nil {
		t.Fatalf("bad JSON log line: %v", err)
	}
	if done["msg"] != string(EvDone) || done["level"] != "INFO" || done["job"] != float64(42) {
		t.Fatalf("done record = %v", done)
	}
}

// DumpTail writes the recorder's recent events to the log — the eviction
// postmortem.
func TestDumpTail(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, &slog.HandlerOptions{Level: slog.LevelWarn}))
	o := New(Options{Logger: logger})
	for i := 0; i < 5; i++ {
		o.Emit(Event{Kind: EvQueued, Job: uint32(i + 1)})
	}
	o.DumpTail("rank 2 evicted", 3)
	out := buf.String()
	if !strings.Contains(out, "flight_dump") || !strings.Contains(out, "rank 2 evicted") {
		t.Fatalf("dump header missing:\n%s", out)
	}
	if got := strings.Count(out, "flight_event"); got != 3 {
		t.Fatalf("dumped %d events, want 3:\n%s", got, out)
	}
}

func TestEventJSONShape(t *testing.T) {
	e := Event{At: time.Unix(1, 0).UTC(), Kind: EvRetry, Job: 9, Attempt: 2, Detail: "rank 1 died"}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind":"job_retry"`, `"job":9`, `"attempt":2`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("marshal %s missing %s", b, want)
		}
	}
	if strings.Contains(string(b), "bytes") {
		t.Fatalf("zero fields not omitted: %s", b)
	}
	_ = fmt.Sprintf("%v", e) // events must be printable values
}
