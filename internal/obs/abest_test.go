package obs

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// within2x checks the acceptance band: an estimate within a factor of two
// of the truth in both directions.
func within2x(t *testing.T, name string, got, want float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Fatalf("%s = %g, want 0", name, got)
		}
		return
	}
	if got < want/2 || got > want*2 {
		t.Fatalf("%s = %g, want within 2x of %g", name, got, want)
	}
}

// Synthetic known-(α,β) traffic: the estimator must recover both within 2x
// despite 20%% multiplicative noise and 5%% gross outliers (the robust
// rounds' job).
func TestEstimatorConvergesSynthetic(t *testing.T) {
	const (
		alpha = 50e-6     // 50 µs latency
		beta  = 1.0 / 2e9 // 2 GB/s
	)
	rng := rand.New(rand.NewSource(11))
	e := NewABEstimator(time.Minute)
	for i := 0; i < 400; i++ {
		bytes := int64(1 << (10 + rng.Intn(11))) // 1 KiB .. 1 MiB
		sec := alpha + beta*float64(bytes)
		sec *= 1 + 0.2*(rng.Float64()*2-1)
		if rng.Float64() < 0.05 {
			sec *= 10 // straggler: GC pause, retransmit burst
		}
		e.Add(1, bytes, time.Duration(sec*float64(time.Second)))
		// A second link with different constants must not cross-talk.
		e.Add(2, bytes, time.Duration((4*alpha+2*beta*float64(bytes))*float64(time.Second)))
	}
	// Barrier-wait style latency-only samples sharpen the intercept.
	for i := 0; i < 100; i++ {
		e.Add(1, 0, time.Duration(alpha*(1+0.2*(rng.Float64()*2-1))*float64(time.Second)))
	}

	m1, ok := e.Link(1)
	if !ok {
		t.Fatal("no estimate for peer 1")
	}
	within2x(t, "peer1 alpha", m1.Alpha, alpha)
	within2x(t, "peer1 beta", m1.Beta, beta)

	m2, ok := e.Link(2)
	if !ok {
		t.Fatal("no estimate for peer 2")
	}
	within2x(t, "peer2 alpha", m2.Alpha, 4*alpha)
	within2x(t, "peer2 beta", m2.Beta, 2*beta)

	links := e.Links()
	if len(links) != 2 || links[0].Peer != 1 || links[1].Peer != 2 {
		t.Fatalf("links = %+v", links)
	}
	a, b, ok := e.Aggregate()
	if !ok || a <= 0 || b <= 0 {
		t.Fatalf("aggregate = %g, %g, %v", a, b, ok)
	}
}

// Latency-only evidence (all zero-byte samples) must yield α with β = 0,
// never NaN from the degenerate regression.
func TestEstimatorLatencyOnly(t *testing.T) {
	e := NewABEstimator(0)
	for i := 0; i < 50; i++ {
		e.Add(3, 0, 100*time.Microsecond)
	}
	m, ok := e.Link(3)
	if !ok {
		t.Fatal("no estimate")
	}
	if math.IsNaN(m.Alpha) || math.IsNaN(m.Beta) {
		t.Fatalf("NaN estimate: %+v", m)
	}
	within2x(t, "alpha", m.Alpha, 100e-6)
	if m.Beta != 0 {
		t.Fatalf("beta = %g from zero-byte samples, want 0", m.Beta)
	}
}

// Garbage observations must be dropped, and the sample ring must stay
// bounded under unbounded traffic.
func TestEstimatorBoundsAndGarbage(t *testing.T) {
	e := NewABEstimator(0)
	e.Add(-1, 10, time.Millisecond) // negative peer
	e.Add(1, -5, time.Millisecond)  // negative bytes
	e.Add(1, 10, 0)                 // no duration
	e.Add(1, 10, -time.Second)
	if _, ok := e.Link(1); ok {
		t.Fatal("garbage produced an estimate")
	}
	for i := 0; i < samplesPerLink*4; i++ {
		e.Add(1, 1024, time.Millisecond)
	}
	if got := len(e.links[1].ring); got != samplesPerLink {
		t.Fatalf("ring grew to %d, want bound %d", got, samplesPerLink)
	}
	if got := e.links[1].n; got != samplesPerLink*4 {
		t.Fatalf("sample count = %d, want %d", got, samplesPerLink*4)
	}
}

// Seeded priors dominate a cold link and wash out as live samples arrive.
func TestEstimatorSeedAndBlend(t *testing.T) {
	e := NewABEstimator(0)
	e.Seed([]LinkModel{{Peer: 1, Alpha: 1e-3, Beta: 1e-9, Samples: 1000}})
	m, ok := e.Link(1)
	if !ok || m.Alpha != 1e-3 || m.Beta != 1e-9 {
		t.Fatalf("cold seeded link = %+v, %v", m, ok)
	}
	// Live traffic says the link is 10x faster; the blend must move most of
	// the way there once live samples outnumber the prior's cap.
	for i := 0; i < samplesPerLink; i++ {
		e.Add(1, 0, 100*time.Microsecond)
	}
	m, _ = e.Link(1)
	if m.Alpha > 3e-4 {
		t.Fatalf("prior still dominates after %d live samples: alpha %g", samplesPerLink, m.Alpha)
	}
}

func TestModelFileRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, ModelFileName)
	e := NewABEstimator(0)
	for i := 0; i < 64; i++ {
		e.Add(1, int64(i)*1024, time.Duration(50+i)*time.Microsecond)
	}
	if err := e.Save(path); err != nil {
		t.Fatal(err)
	}
	mf, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(mf.Links) != 1 || mf.Links[0].Peer != 1 || mf.Links[0].Samples != 64 {
		t.Fatalf("roundtrip links = %+v", mf.Links)
	}
	// Estimates are decay-weighted, so two snapshots taken microseconds
	// apart differ in the last bits; the roundtrip must agree to 0.1%.
	close := func(a, b float64) bool { return math.Abs(a-b) <= 1e-3*math.Abs(b) }
	want := e.Links()[0]
	if !close(mf.Links[0].Alpha, want.Alpha) || !close(mf.Links[0].Beta, want.Beta) {
		t.Fatalf("roundtrip drifted: %+v vs %+v", mf.Links[0], want)
	}
	// A restarted estimator seeded from the file reproduces the model.
	e2 := NewABEstimator(0)
	e2.Seed(mf.Links)
	m, ok := e2.Link(1)
	if !ok || !close(m.Alpha, want.Alpha) {
		t.Fatalf("seeded reload = %+v, %v", m, ok)
	}
	if _, err := LoadModelFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFile(path); err == nil {
		t.Fatal("corrupt file loaded")
	}
}
