// Package obs is the service's always-on observability layer: a structured
// event log (log/slog), a bounded in-memory flight recorder, per-request
// lifecycle spans, and an online α–β machine-model estimator.
//
// Everything is nil-safe: a nil *Observer accepts every call and does
// nothing, so callers thread one pointer through without guards and the
// disabled path stays allocation-free (the zero-alloc tests hold it there).
// Event is a flat value struct for the same reason — emitting one through a
// nil observer must not force a variadic slice or an interface box.
package obs

import (
	"context"
	"log/slog"
	"sync/atomic"
	"time"
)

// Kind names one event type; the value is the slog message and the "kind"
// field of the JSON log line.
type Kind string

const (
	EvQueued       Kind = "job_queued"     // admitted to the priority queue
	EvDispatched   Kind = "job_dispatched" // popped by a dispatcher worker
	EvRunning      Kind = "job_running"    // factorization started
	EvGathering    Kind = "job_gathering"  // run done, collecting trace shards
	EvDone         Kind = "job_done"       // terminal: success
	EvFailed       Kind = "job_failed"     // terminal: factorization error
	EvCanceled     Kind = "job_canceled"   // terminal: client or shutdown cancel
	EvExpired      Kind = "job_expired"    // terminal: deadline passed before dispatch
	EvRetry        Kind = "job_retry"      // attempt lost a fleet rank; requeued
	EvShed         Kind = "shed"           // 429 from any admission class
	EvAgentJoin    Kind = "agent_join"     // fleet rank present at boot
	EvAgentEvict   Kind = "agent_evict"    // fleet rank declared dead
	EvBarrierAbort Kind = "barrier_abort"  // collective barrier failed
	EvCheckpoint   Kind = "checkpoint"     // durable session checkpoint written
	EvSessionOpen  Kind = "session_open"   // streaming session created
	EvSessionClose Kind = "session_close"  // streaming session deleted
	EvAppendStream Kind = "append_stream"  // session append stream finished
	EvBatchStart   Kind = "batch_start"    // batch stream admitted
	EvBatchEnd     Kind = "batch_end"      // batch stream finished
	EvModelLoaded  Kind = "model_loaded"   // machine model restored from disk
	EvModelSaved   Kind = "model_saved"    // machine model persisted
	EvPlan         Kind = "job_planned"    // autotuner chose a configuration
)

// Event is one structured log record. It is a flat value type: every field
// rides in the struct itself so emitting an event allocates nothing until a
// sink (slog, the flight ring) decides to keep it.
type Event struct {
	At      time.Time `json:"t"`
	Kind    Kind      `json:"kind"`
	Class   string    `json:"class,omitempty"` // admission class: job, batch, session
	Job     uint32    `json:"job,omitempty"`
	Session string    `json:"session,omitempty"`
	Tenant  string    `json:"tenant,omitempty"`
	Attempt int       `json:"attempt,omitempty"`
	Rank    int       `json:"rank,omitempty"`
	Bytes   int64     `json:"bytes,omitempty"`
	DurMS   float64   `json:"dur_ms,omitempty"`
	RetryS  int       `json:"retry_after_s,omitempty"` // Retry-After hint on sheds
	Detail  string    `json:"detail,omitempty"`
}

// Options parameterizes an Observer.
type Options struct {
	// Logger receives one record per event; nil keeps events in the flight
	// ring only.
	Logger *slog.Logger
	// FlightCap bounds the flight-recorder ring; <= 0 takes
	// DefaultFlightCap. Overflow overwrites the oldest events and bumps the
	// drop counter — recording never blocks and never grows.
	FlightCap int
	// HalfLife is the α–β estimator's sample decay half-life; <= 0 takes
	// DefaultHalfLife.
	HalfLife time.Duration
}

// Observer is the event sink threaded through the service. The nil Observer
// is valid and free: every method checks the receiver first.
type Observer struct {
	log    *slog.Logger
	ring   *Ring
	est    *ABEstimator
	events atomic.Int64
}

// New builds an Observer; see Options for the defaults.
func New(o Options) *Observer {
	return &Observer{
		log:  o.Logger,
		ring: NewRing(o.FlightCap),
		est:  NewABEstimator(o.HalfLife),
	}
}

// Enabled reports whether events go anywhere (false exactly on the nil
// observer).
func (o *Observer) Enabled() bool { return o != nil }

// Emit records one event in the flight ring and, when a logger is attached,
// as one structured log record. Safe on nil.
func (o *Observer) Emit(e Event) {
	if o == nil {
		return
	}
	if e.At.IsZero() {
		e.At = time.Now()
	}
	o.events.Add(1)
	o.ring.Push(e)
	o.logEvent(e)
}

// level maps event kinds onto log severities: frequent lifecycle chatter is
// debug, landmarks are info, trouble is warn.
func level(k Kind) slog.Level {
	switch k {
	case EvQueued, EvDispatched, EvRunning, EvGathering, EvCheckpoint, EvAppendStream, EvPlan:
		return slog.LevelDebug
	case EvShed, EvAgentEvict, EvFailed, EvExpired, EvRetry, EvBarrierAbort:
		return slog.LevelWarn
	default:
		return slog.LevelInfo
	}
}

func (o *Observer) logEvent(e Event) {
	if o.log == nil {
		return
	}
	lvl := level(e.Kind)
	ctx := context.Background()
	if !o.log.Enabled(ctx, lvl) {
		return
	}
	attrs := make([]slog.Attr, 0, 11)
	attrs = append(attrs, slog.String("kind", string(e.Kind)))
	if e.Class != "" {
		attrs = append(attrs, slog.String("class", e.Class))
	}
	if e.Job != 0 {
		attrs = append(attrs, slog.Uint64("job", uint64(e.Job)))
	}
	if e.Session != "" {
		attrs = append(attrs, slog.String("session", e.Session))
	}
	if e.Tenant != "" {
		attrs = append(attrs, slog.String("tenant", e.Tenant))
	}
	if e.Attempt != 0 {
		attrs = append(attrs, slog.Int("attempt", e.Attempt))
	}
	if e.Rank != 0 {
		attrs = append(attrs, slog.Int("rank", e.Rank))
	}
	if e.Bytes != 0 {
		attrs = append(attrs, slog.Int64("bytes", e.Bytes))
	}
	if e.DurMS != 0 {
		attrs = append(attrs, slog.Float64("dur_ms", e.DurMS))
	}
	if e.RetryS != 0 {
		attrs = append(attrs, slog.Int("retry_after_s", e.RetryS))
	}
	if e.Detail != "" {
		attrs = append(attrs, slog.String("detail", e.Detail))
	}
	o.log.LogAttrs(ctx, lvl, string(e.Kind), attrs...)
}

// Tail returns the most recent n events across the whole ring, oldest
// first. Safe on nil (returns nil).
func (o *Observer) Tail(n int) []Event {
	if o == nil {
		return nil
	}
	return o.ring.Tail(n)
}

// TailJob returns the most recent events mentioning one job id — the flight
// tail attached to a failed job's record. Safe on nil.
func (o *Observer) TailJob(job uint32, n int) []Event {
	if o == nil {
		return nil
	}
	return o.ring.TailMatch(n, func(e Event) bool { return e.Job == job })
}

// Stats returns how many events were emitted and how many the ring
// overwrote. Safe on nil.
func (o *Observer) Stats() (events, drops int64) {
	if o == nil {
		return 0, 0
	}
	return o.events.Load(), o.ring.Drops()
}

// Estimator exposes the α–β machine-model estimator (nil on the nil
// observer).
func (o *Observer) Estimator() *ABEstimator {
	if o == nil {
		return nil
	}
	return o.est
}

// Links returns the current per-link machine-model estimates. Safe on nil.
func (o *Observer) Links() []LinkModel {
	if o == nil {
		return nil
	}
	return o.est.Links()
}

// DumpTail writes the flight-recorder tail to the structured log — the
// postmortem on agent eviction, so operators see the events leading up to a
// fleet degradation without scraping counters. Safe on nil; a no-op without
// a logger.
func (o *Observer) DumpTail(reason string, n int) {
	if o == nil || o.log == nil {
		return
	}
	ctx := context.Background()
	if !o.log.Enabled(ctx, slog.LevelWarn) {
		return
	}
	tail := o.ring.Tail(n)
	o.log.LogAttrs(ctx, slog.LevelWarn, "flight_dump",
		slog.String("reason", reason), slog.Int("events", len(tail)), slog.Int64("dropped", o.ring.Drops()))
	for _, e := range tail {
		attrs := []slog.Attr{
			slog.Time("at", e.At),
			slog.String("kind", string(e.Kind)),
		}
		if e.Job != 0 {
			attrs = append(attrs, slog.Uint64("job", uint64(e.Job)))
		}
		if e.Session != "" {
			attrs = append(attrs, slog.String("session", e.Session))
		}
		if e.Detail != "" {
			attrs = append(attrs, slog.String("detail", e.Detail))
		}
		o.log.LogAttrs(ctx, slog.LevelWarn, "flight_event", attrs...)
	}
}
