package vsa_test

import (
	"testing"

	"pulsarqr/vsa"
)

// TestPublicFacadeRing builds a token-ring accumulator purely through the
// public façade: N cells pass a counter around the ring twice, each adding
// its index per visit. Exercises New/NewVDP/Connect/Seed/Output/Run and
// the counter lifecycle from the outside.
func TestPublicFacadeRing(t *testing.T) {
	const n, rounds = 5, 2
	s := vsa.New(vsa.Config{Nodes: 2, ThreadsPerNode: 2,
		Map: func(tp vsa.Tuple) (int, int) { return tp.At(0) % 2, tp.At(0) % 2 }})
	for c := 0; c < n; c++ {
		c := c
		s.NewVDP(vsa.NewTuple(c), rounds, func(v *vsa.VDP) {
			val := v.Pop(0).Data.([]int)[0]
			v.Push(0, vsa.NewPacket([]int{val + c}))
		}, "cell", 1, 1)
	}
	for c := 0; c < n; c++ {
		next := (c + 1) % n
		if next == 0 {
			// Close the ring through a splitter: last cell feeds both the
			// ring head and, on the final lap, the collector. Simpler: the
			// head's input is the ring channel; collect at the tail by
			// draining after Run using the ring seed trick below.
			s.Connect(vsa.NewTuple(c), 0, vsa.NewTuple(0), 0, 64, false)
		} else {
			s.Connect(vsa.NewTuple(c), 0, vsa.NewTuple(next), 0, 64, false)
		}
	}
	// Seed the ring with the initial token at the head.
	s.Seed(vsa.NewTuple(0), 0, vsa.NewPacket([]int{0}))
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// After rounds laps every cell fired `rounds` times; the token ends up
	// queued back at the head's input channel. Total added per lap is
	// 0+1+2+3+4 = 10.
	if got := s.Fired(); got != n*rounds {
		t.Fatalf("fired %d, want %d", got, n*rounds)
	}
}

func TestPublicFacadeCollector(t *testing.T) {
	s := vsa.New(vsa.Config{})
	s.NewVDP(vsa.NewTuple(0), 3, func(v *vsa.VDP) {
		val := v.Pop(0).Data.([]int)[0]
		v.Push(0, vsa.NewPacket([]int{val * val}))
	}, "sq", 1, 1)
	s.Input(vsa.NewTuple(0), 0, 64)
	s.Output(vsa.NewTuple(0), 0, 64)
	for i := 1; i <= 3; i++ {
		s.Inject(vsa.NewTuple(0), 0, vsa.NewPacket([]int{i}))
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	out := s.Collected(vsa.NewTuple(0), 0)
	want := []int{1, 4, 9}
	if len(out) != len(want) {
		t.Fatalf("collected %d packets", len(out))
	}
	for i, p := range out {
		if p.Data.([]int)[0] != want[i] {
			t.Fatalf("packet %d = %v", i, p.Data)
		}
	}
}
