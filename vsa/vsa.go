// Package vsa is the public façade over the PULSAR-style runtime: Virtual
// Systolic Arrays of Virtual Data Processors connected by channels, run on
// simulated distributed-memory nodes with worker threads and a
// communication proxy per node.
//
// The runtime is fully decoupled from the QR factorization that motivates
// it (one of the paper's stated goals): any algorithm expressible as a
// network of data processors can be built with it. See examples/systolic
// for a non-QR application.
//
// Build an array with New, add processors with (*VSA).NewVDP, connect them
// with Connect/Input/Output, seed it with Inject, then Run. A VDP fires
// when every active input channel holds a packet; inside its function it
// may Pop, compute, Push, and enable/disable its own input channels.
package vsa

import (
	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/tuple"
)

// Tuple identifies a VDP: an ordered string of integers.
type Tuple = tuple.Tuple

// NewTuple builds a tuple from its components.
func NewTuple(parts ...int) Tuple { return tuple.New(parts...) }

// VSA is a virtual systolic array plus its runtime state.
type VSA = pulsar.VSA

// VDP is a virtual data processor.
type VDP = pulsar.VDP

// Packet is the unit of data flowing through channels.
type Packet = pulsar.Packet

// Func is a VDP's executable code, invoked once per firing.
type Func = pulsar.Func

// Config parameterizes a run: nodes, threads per node, scheduling scheme,
// VDP placement, global parameters, trace hook.
type Config = pulsar.Config

// Mapping places VDPs onto (node, thread) pairs.
type Mapping = pulsar.Mapping

// FireEvent describes one VDP firing (for tracing).
type FireEvent = pulsar.FireEvent

// Scheduling selects the worker scheme.
type Scheduling = pulsar.Scheduling

// Worker scheduling schemes: Lazy fires a ready VDP once and moves on;
// Aggressive drains it while ready.
const (
	Lazy       = pulsar.Lazy
	Aggressive = pulsar.Aggressive
)

// Codec (un)marshals one payload type for inter-node transport.
type Codec = pulsar.Codec

// New creates an empty array with the given configuration.
func New(cfg Config) *VSA { return pulsar.New(cfg) }

// NewPacket wraps a payload in a packet.
func NewPacket(data any) *Packet { return pulsar.NewPacket(data) }

// RegisterCodec installs a payload codec for inter-node transport of
// user-defined packet types. IDs below 16 are reserved.
func RegisterCodec(c Codec) { pulsar.RegisterCodec(c) }
