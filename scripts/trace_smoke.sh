#!/bin/sh
# trace_smoke.sh — end-to-end check of distributed tracing.
#
# Runs a 2-process TCP factorization with -trace, verifies rank 0
# gathered one shard per rank, merges the shards with qrtrace -merge,
# and checks the analysis reports a non-empty critical path and emits
# loadable Chrome trace_event JSON.
#
# Usage: scripts/trace_smoke.sh [path-to-bin-dir]   (default: ./bin)
set -eu

BIN=${1:-bin}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT INT TERM

[ -x "$BIN/qrfactor" ] && [ -x "$BIN/qrnode" ] && [ -x "$BIN/qrtrace" ] || {
    echo "trace-smoke: $BIN/{qrfactor,qrnode,qrtrace} missing (run: make build)" >&2
    exit 1
}

SHARDS="$WORK/shards.jsonl"
"$BIN/qrfactor" -launch 2 -m 1024 -n 128 -nb 32 -ib 8 -check \
    -trace "$SHARDS" >"$WORK/factor.out" 2>&1 || {
    echo "trace-smoke: traced factorization failed:" >&2
    cat "$WORK/factor.out" >&2
    exit 1
}
[ -s "$SHARDS" ] || {
    echo "trace-smoke: no trace file written" >&2
    cat "$WORK/factor.out" >&2
    exit 1
}
nshards=$(grep -c '^{"t":"shard"' "$SHARDS")
[ "$nshards" -eq 2 ] || {
    echo "trace-smoke: $nshards shard headers in $SHARDS, want 2" >&2
    exit 1
}
echo "trace-smoke: 2-rank run gathered both shards ($(wc -l <"$SHARDS") lines)"

"$BIN/qrtrace" -merge "$SHARDS" -chrome "$WORK/trace.json" >"$WORK/merge.out" 2>&1 || {
    echo "trace-smoke: qrtrace -merge failed:" >&2
    cat "$WORK/merge.out" >&2
    exit 1
}
grep -q '^merged 2 shards' "$WORK/merge.out" || {
    echo "trace-smoke: merge did not report 2 shards:" >&2
    cat "$WORK/merge.out" >&2
    exit 1
}
grep -q '^critical path: [1-9]' "$WORK/merge.out" || {
    echo "trace-smoke: no critical path in the analysis:" >&2
    cat "$WORK/merge.out" >&2
    exit 1
}
grep -q '^WARNING' "$WORK/merge.out" && {
    echo "trace-smoke: recorder dropped events on a smoke-sized run:" >&2
    cat "$WORK/merge.out" >&2
    exit 1
}
echo "trace-smoke: merge reports a critical path, no drops"

# Chrome trace_event JSON: an array of complete ("ph":"X") events.
head -c1 "$WORK/trace.json" | grep -q '\[' || {
    echo "trace-smoke: chrome trace is not a JSON array" >&2
    exit 1
}
grep -q '"ph":"X"' "$WORK/trace.json" || {
    echo "trace-smoke: chrome trace has no complete events" >&2
    exit 1
}
echo "trace-smoke: chrome trace JSON looks loadable"
