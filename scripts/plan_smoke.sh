#!/bin/sh
# plan_smoke.sh — end-to-end check of the trace-driven planner.
#
# Starts qrserve -autotune with two launched agent processes, exercises
# the POST /v1/plan dry-run (computed, then served from the plan cache),
# runs one autotuned job end-to-end and verifies its plan block and the
# qrserve_plan_* metrics, then points qrbench -plan at both a canned
# machine model and the live server's /v1/machine-model.
#
# Usage: scripts/plan_smoke.sh [path-to-bin-dir]   (default: ./bin)
set -eu

BIN=${1:-bin}
WORK=$(mktemp -d)
SERVE_PID=

cleanup() {
    status=$?
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill -TERM "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ]; then
        echo "--- qrserve log ---"
        cat "$WORK/serve.log" 2>/dev/null || true
    fi
    rm -rf "$WORK"
    exit "$status"
}
trap cleanup EXIT INT TERM

[ -x "$BIN/qrserve" ] && [ -x "$BIN/qrservenode" ] && [ -x "$BIN/qrbench" ] || {
    echo "plan-smoke: $BIN/qrserve, $BIN/qrservenode or $BIN/qrbench missing (run: make build)" >&2
    exit 1
}

"$BIN/qrserve" -listen 127.0.0.1:0 -portfile "$WORK/port" \
    -launch 2 -threads 2 -autotune >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

i=0
until [ -s "$WORK/port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ] || ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "plan-smoke: qrserve did not come up" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$WORK/port")
echo "plan-smoke: qrserve up at $ADDR (fleet-wide -autotune)"

# Dry-run planning commits no job: the full ranked decision comes back
# with the hand-default scored alongside the choice.
curl -sf "http://$ADDR/v1/plan" -d '{"m":4096,"n":256}' >"$WORK/plan1"
grep -q '"choice"' "$WORK/plan1" && grep -q '"default"' "$WORK/plan1" &&
    grep -q '"predicted_ms"' "$WORK/plan1" && grep -q '"rationale"' "$WORK/plan1" || {
    echo "plan-smoke: /v1/plan decision incomplete:" >&2
    cat "$WORK/plan1" >&2
    exit 1
}
grep -q '"from_cache":true' "$WORK/plan1" && {
    echo "plan-smoke: first plan claims a cache hit" >&2
    exit 1
}
echo "plan-smoke: /v1/plan dry-run returns a scored decision"

# Same shape again must be served from the epoch-keyed plan cache.
curl -sf "http://$ADDR/v1/plan" -d '{"m":4096,"n":256}' >"$WORK/plan2"
grep -q '"from_cache":true' "$WORK/plan2" || {
    echo "plan-smoke: replanning the same shape missed the cache:" >&2
    cat "$WORK/plan2" >&2
    exit 1
}
echo "plan-smoke: repeat plan served from cache"

# One autotuned job end-to-end: under -autotune every job carries its
# plan block on the job view.
curl -sf "http://$ADDR/v1/factorize" \
    -d '{"m":1024,"n":128,"seed":17,"wait":true}' >"$WORK/job1"
grep -q '"status":"done"' "$WORK/job1" && grep -q '"ok":true' "$WORK/job1" || {
    echo "plan-smoke: autotuned job did not complete cleanly:" >&2
    cat "$WORK/job1" >&2
    exit 1
}
grep -q '"plan"' "$WORK/job1" && grep -q '"predicted_ms"' "$WORK/job1" || {
    echo "plan-smoke: job view carries no plan block:" >&2
    cat "$WORK/job1" >&2
    exit 1
}
echo "plan-smoke: autotuned job done, plan block on the job view"

curl -sf "http://$ADDR/metrics" >"$WORK/metrics"
grep -q 'qrserve_plan_total{source="computed"} [1-9]' "$WORK/metrics" &&
    grep -q 'qrserve_plan_total{source="cache"} [1-9]' "$WORK/metrics" || {
    echo "plan-smoke: plan counters missing or zero:" >&2
    grep 'qrserve_plan' "$WORK/metrics" >&2 || true
    exit 1
}
grep -q 'qrserve_plan_seconds_bucket' "$WORK/metrics" || {
    echo "plan-smoke: plan latency histogram missing" >&2
    exit 1
}
grep -q 'qrserve_plan_actual_over_predicted_bucket' "$WORK/metrics" || {
    echo "plan-smoke: calibration-ratio histogram missing" >&2
    exit 1
}
curl -sf "http://$ADDR/v1/status" >"$WORK/status"
grep -q '"planner"' "$WORK/status" && grep -q '"plans"' "$WORK/status" || {
    echo "plan-smoke: /v1/status has no planner block:" >&2
    cat "$WORK/status" >&2
    exit 1
}
echo "plan-smoke: planner metrics and status block exported"

# Offline planner against a canned machine, then against the live
# server's measured /v1/machine-model.
"$BIN/qrbench" -plan -plan-m 2048 -plan-n 256 -plan-machine localhost:2,2 >"$WORK/offline"
grep -q 'chosen' "$WORK/offline" && grep -q 'default' "$WORK/offline" || {
    echo "plan-smoke: qrbench -plan (canned machine) output unexpected:" >&2
    cat "$WORK/offline" >&2
    exit 1
}
"$BIN/qrbench" -plan -plan-m 2048 -plan-n 256 \
    -plan-machine "http://$ADDR" >"$WORK/live"
grep -q 'chosen' "$WORK/live" || {
    echo "plan-smoke: qrbench -plan against the live model failed:" >&2
    cat "$WORK/live" >&2
    exit 1
}
echo "plan-smoke: qrbench -plan works offline and against the live model"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || {
    echo "plan-smoke: qrserve exited non-zero on SIGTERM" >&2
    exit 1
}
SERVE_PID=
echo "plan-smoke: clean shutdown"
