#!/bin/sh
# session_smoke.sh — end-to-end check of durable streaming TSQR sessions.
#
# Starts a qrserve with a checkpoint directory, opens a session and
# streams 3 row blocks into it (checkpoint every append), then kills the
# server with SIGKILL — no flush, no goodbye — restarts it over the same
# directory, and verifies the restored session serves an R bitwise equal
# to a local sequential replay of the same blocks. That is the QSC1
# durability contract: what a client saw committed survives kill -9.
#
# Usage: scripts/session_smoke.sh [path-to-bin-dir]   (default: ./bin)
set -eu

BIN=${1:-bin}
APPENDS=${SESSION_SMOKE_APPENDS:-3}
WORK=$(mktemp -d)
SERVE_PID=

cleanup() {
    status=$?
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill -TERM "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ]; then
        echo "--- qrserve logs ---"
        cat "$WORK"/serve*.log 2>/dev/null || true
    fi
    rm -rf "$WORK"
    exit "$status"
}
trap cleanup EXIT INT TERM

[ -x "$BIN/qrserve" ] && [ -x "$BIN/qrbench" ] || {
    echo "session-smoke: $BIN/qrserve or $BIN/qrbench missing (run: make build)" >&2
    exit 1
}

start_serve() {
    logfile=$1
    rm -f "$WORK/port"
    "$BIN/qrserve" -listen 127.0.0.1:0 -portfile "$WORK/port" -threads 2 \
        -checkpoint-dir "$WORK/ckpt" >"$WORK/$logfile" 2>&1 &
    SERVE_PID=$!
    i=0
    until [ -s "$WORK/port" ]; do
        i=$((i + 1))
        if [ "$i" -gt 300 ] || ! kill -0 "$SERVE_PID" 2>/dev/null; then
            echo "session-smoke: qrserve did not come up" >&2
            exit 1
        fi
        sleep 0.1
    done
    ADDR=$(cat "$WORK/port")
}

start_serve serve1.log
echo "session-smoke: qrserve up at $ADDR (checkpoints in $WORK/ckpt)"

# Open a durable session and stream the appends; every one checkpoints
# before its reply, so everything the client saw committed is on disk.
"$BIN/qrbench" -session -session-url "http://$ADDR" -session-act seed \
    -session-count "$APPENDS" >"$WORK/seed.out"
cat "$WORK/seed.out"
SID=$(sed -n 's/^session-id \(.*\)$/\1/p' "$WORK/seed.out")
[ -n "$SID" ] || { echo "session-smoke: seed printed no session id" >&2; exit 1; }

ls "$WORK/ckpt/$SID.qsc" >/dev/null || {
    echo "session-smoke: no checkpoint file for $SID" >&2
    exit 1
}

# Kill -9: the harshest restart there is. Anything not already durable
# is gone, and the contract says nothing the client saw committed may be.
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=
echo "session-smoke: killed qrserve with SIGKILL"

start_serve serve2.log
echo "session-smoke: qrserve restarted at $ADDR"

# The restored session must report every seeded append and serve an R
# bitwise equal to a local sequential replay of the same blocks.
"$BIN/qrbench" -session -session-url "http://$ADDR" -session-act verify \
    -session-id "$SID" -session-count "$APPENDS" >"$WORK/verify.out"
cat "$WORK/verify.out"
grep -q "session verify ok: $APPENDS appends restored, R bitwise equal" "$WORK/verify.out" || {
    echo "session-smoke: verify did not certify the restored R" >&2
    exit 1
}

# The metrics surface agrees: one session registered, the restore counted.
curl -sf "http://$ADDR/metrics" >"$WORK/metrics"
grep -q '^qrserve_sessions_active 1$' "$WORK/metrics" &&
    grep -q '^qrserve_sessions_restored_total 1$' "$WORK/metrics" || {
    echo "session-smoke: session metrics disagree after restore:" >&2
    grep '^qrserve_session' "$WORK/metrics" >&2 || true
    exit 1
}
echo "session-smoke: metrics agree (1 active session, 1 restore)"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || {
    echo "session-smoke: qrserve exited non-zero on SIGTERM" >&2
    exit 1
}
SERVE_PID=
echo "session-smoke: clean shutdown"
