#!/bin/sh
# serve_smoke.sh — end-to-end check of the factorization service.
#
# Starts qrserve with two launched agent processes, submits three
# concurrent jobs over HTTP, verifies each completes with a passing
# residual, checks the metrics counters agree, and shuts down cleanly.
#
# Usage: scripts/serve_smoke.sh [path-to-bin-dir]   (default: ./bin)
set -eu

BIN=${1:-bin}
WORK=$(mktemp -d)
SERVE_PID=

cleanup() {
    status=$?
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill -TERM "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ]; then
        echo "--- qrserve log ---"
        cat "$WORK/serve.log" 2>/dev/null || true
    fi
    rm -rf "$WORK"
    exit "$status"
}
trap cleanup EXIT INT TERM

[ -x "$BIN/qrserve" ] && [ -x "$BIN/qrservenode" ] || {
    echo "serve-smoke: $BIN/qrserve or $BIN/qrservenode missing (run: make build)" >&2
    exit 1
}

"$BIN/qrserve" -listen 127.0.0.1:0 -portfile "$WORK/port" \
    -launch 2 -threads 2 >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

# Wait for the HTTP listener (the portfile appears once it is bound).
i=0
until [ -s "$WORK/port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ] || ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "serve-smoke: qrserve did not come up" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$WORK/port")
echo "serve-smoke: qrserve up at $ADDR"

curl -sf "http://$ADDR/healthz" | grep -q '"ranks":3' || {
    echo "serve-smoke: expected a 3-rank fleet" >&2
    exit 1
}

# Three concurrent jobs, distinct shapes and reduction trees.
curl -sf "http://$ADDR/v1/factorize" \
    -d '{"m":1024,"n":256,"seed":11,"wait":true}' >"$WORK/job1" &
P1=$!
curl -sf "http://$ADDR/v1/factorize" \
    -d '{"m":768,"n":192,"seed":12,"tree":"flat","wait":true}' >"$WORK/job2" &
P2=$!
curl -sf "http://$ADDR/v1/factorize" \
    -d '{"m":512,"n":128,"seed":13,"tree":"binary","wait":true}' >"$WORK/job3" &
P3=$!
wait "$P1" && wait "$P2" && wait "$P3" || {
    echo "serve-smoke: a submit request failed" >&2
    exit 1
}

for j in 1 2 3; do
    grep -q '"status":"done"' "$WORK/job$j" && grep -q '"ok":true' "$WORK/job$j" || {
        echo "serve-smoke: job $j did not complete cleanly:" >&2
        cat "$WORK/job$j" >&2
        exit 1
    }
done
echo "serve-smoke: 3 concurrent jobs done, residuals within tolerance"

curl -sf "http://$ADDR/metrics" >"$WORK/metrics"
grep -q '^qrserve_jobs_completed_total 3$' "$WORK/metrics" || {
    echo "serve-smoke: metrics disagree (want 3 completed):" >&2
    grep '^qrserve_jobs' "$WORK/metrics" >&2 || true
    exit 1
}
grep -q '^qrserve_job_latency_seconds_count 3$' "$WORK/metrics" || {
    echo "serve-smoke: latency histogram count != 3" >&2
    exit 1
}
echo "serve-smoke: metrics agree (3 completed, histogram count 3)"

# Transport telemetry: the fleet run must have moved bytes over both
# agent links and counted post-run barriers.
grep -q '^qrserve_link_sent_bytes_total{peer="1"} [1-9]' "$WORK/metrics" &&
    grep -q '^qrserve_link_sent_bytes_total{peer="2"} [1-9]' "$WORK/metrics" || {
    echo "serve-smoke: no link byte counters for the agents:" >&2
    grep '^qrserve_link' "$WORK/metrics" >&2 || true
    exit 1
}
# Per-job barriers run over the mux, not the root endpoint, so the root
# counter may be 0 — but the series must be exported.
grep -q '^qrserve_transport_barriers_total ' "$WORK/metrics" || {
    echo "serve-smoke: barrier counter series missing" >&2
    exit 1
}
grep -q '^qrserve_mux_jobs_open ' "$WORK/metrics" || {
    echo "serve-smoke: mux depth series missing" >&2
    exit 1
}
echo "serve-smoke: transport telemetry moving (link bytes, mux depths)"

# Observability layer: lifecycle spans on the job view, build identity and
# span histograms on /metrics, the live status snapshot, and a machine
# model the simulator can load.
curl -sf "http://$ADDR/v1/jobs/1" >"$WORK/job1view"
grep -q '"spans"' "$WORK/job1view" && grep -q '"queue_wait_ms"' "$WORK/job1view" &&
    grep -q '"run_ms"' "$WORK/job1view" || {
    echo "serve-smoke: job view carries no lifecycle spans:" >&2
    cat "$WORK/job1view" >&2
    exit 1
}
grep -q '^qrserve_build_info{' "$WORK/metrics" || {
    echo "serve-smoke: build-info gauge missing" >&2
    exit 1
}
grep -q '^qrserve_mux_barriers_total ' "$WORK/metrics" || {
    echo "serve-smoke: mux barrier totals missing" >&2
    exit 1
}
grep -q 'qrserve_queue_wait_seconds_bucket' "$WORK/metrics" &&
    grep -q 'qrserve_run_seconds_count{class="job"} 3' "$WORK/metrics" || {
    echo "serve-smoke: lifecycle span histograms missing or miscounted:" >&2
    grep 'qrserve_run_seconds\|qrserve_queue_wait' "$WORK/metrics" >&2 || true
    exit 1
}
curl -sf "http://$ADDR/v1/status" >"$WORK/status"
grep -q '"kernel"' "$WORK/status" && grep -q '"ranks":3' "$WORK/status" &&
    grep -q '"classes"' "$WORK/status" || {
    echo "serve-smoke: /v1/status incomplete:" >&2
    cat "$WORK/status" >&2
    exit 1
}
curl -sf "http://$ADDR/v1/machine-model" >"$WORK/model"
grep -q '"machine"' "$WORK/model" && grep -q '"alpha_inter_seconds"' "$WORK/model" || {
    echo "serve-smoke: /v1/machine-model incomplete:" >&2
    cat "$WORK/model" >&2
    exit 1
}
echo "serve-smoke: spans, status, build info and machine model all serving"

# qrstat renders one snapshot against the live server.
if [ -x "$BIN/qrstat" ]; then
    "$BIN/qrstat" -url "http://$ADDR" >"$WORK/qrstat.out"
    grep -q 'fleet: 3/3 ranks live' "$WORK/qrstat.out" || {
        echo "serve-smoke: qrstat snapshot wrong:" >&2
        cat "$WORK/qrstat.out" >&2
        exit 1
    }
    echo "serve-smoke: qrstat snapshot renders the fleet"
fi

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || {
    echo "serve-smoke: qrserve exited non-zero on SIGTERM" >&2
    exit 1
}
SERVE_PID=
if pgrep -f "$BIN/qrservenode" >/dev/null 2>&1; then
    echo "serve-smoke: orphaned qrservenode agents left behind" >&2
    pkill -f "$BIN/qrservenode" || true
    exit 1
fi
echo "serve-smoke: clean shutdown, no orphaned agents"
