#!/bin/sh
# batch_smoke.sh — end-to-end check of the batched small-matrix path.
#
# Starts a standalone qrserve, streams a 10k-matrix batch through
# POST /v1/batch via qrbench's client mode (which verifies the trailer
# checksum against every received byte), checks the batch metrics
# agree, proves the stream leaked no goroutines via the
# qrserve_goroutines gauge, and shuts down cleanly.
#
# Usage: scripts/batch_smoke.sh [path-to-bin-dir]   (default: ./bin)
set -eu

BIN=${1:-bin}
COUNT=${BATCH_SMOKE_COUNT:-10000}
WORK=$(mktemp -d)
SERVE_PID=

cleanup() {
    status=$?
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill -TERM "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ]; then
        echo "--- qrserve log ---"
        cat "$WORK/serve.log" 2>/dev/null || true
    fi
    rm -rf "$WORK"
    exit "$status"
}
trap cleanup EXIT INT TERM

[ -x "$BIN/qrserve" ] && [ -x "$BIN/qrbench" ] || {
    echo "batch-smoke: $BIN/qrserve or $BIN/qrbench missing (run: make build)" >&2
    exit 1
}

"$BIN/qrserve" -listen 127.0.0.1:0 -portfile "$WORK/port" -threads 2 \
    >"$WORK/serve.log" 2>&1 &
SERVE_PID=$!

i=0
until [ -s "$WORK/port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ] || ! kill -0 "$SERVE_PID" 2>/dev/null; then
        echo "batch-smoke: qrserve did not come up" >&2
        exit 1
    fi
    sleep 0.1
done
ADDR=$(cat "$WORK/port")
echo "batch-smoke: qrserve up at $ADDR"

goroutines() {
    curl -sf "http://$ADDR/metrics" | sed -n 's/^qrserve_goroutines \([0-9]*\)$/\1/p'
}
BEFORE=$(goroutines)
[ -n "$BEFORE" ] || { echo "batch-smoke: no qrserve_goroutines gauge" >&2; exit 1; }

# One streamed batch; the client fails loudly on a count or checksum
# mismatch, so reaching the ok line certifies both.
"$BIN/qrbench" -batch -batch-url "http://$ADDR" -batch-count "$COUNT" >"$WORK/batch.out"
grep -q "batch ok: $COUNT matrices, trailer checksum verified" "$WORK/batch.out" || {
    echo "batch-smoke: client did not report a verified batch:" >&2
    cat "$WORK/batch.out" >&2
    exit 1
}
echo "batch-smoke: $COUNT matrices round-tripped, checksum verified"

curl -sf "http://$ADDR/metrics" >"$WORK/metrics"
grep -q '^qrserve_batch_requests_total 1$' "$WORK/metrics" &&
    grep -q "^qrserve_batch_matrices_total $COUNT\$" "$WORK/metrics" &&
    grep -q '^qrserve_batch_shed_total 0$' "$WORK/metrics" || {
    echo "batch-smoke: batch metrics disagree (want 1 request, $COUNT matrices, 0 shed):" >&2
    grep '^qrserve_batch' "$WORK/metrics" >&2 || true
    exit 1
}
echo "batch-smoke: metrics agree (1 request, $COUNT matrices, 0 shed)"

# The stream must leak nothing: the goroutine gauge settles back to its
# pre-batch level (keepalive conns park a couple of goroutines briefly,
# so poll until they idle out).
i=0
while :; do
    AFTER=$(goroutines)
    [ -n "$AFTER" ] && [ "$AFTER" -le "$BEFORE" ] && break
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "batch-smoke: goroutine leak: $BEFORE before, $AFTER after" >&2
        exit 1
    fi
    sleep 0.1
done
echo "batch-smoke: no goroutine leak ($BEFORE before, $AFTER after)"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || {
    echo "batch-smoke: qrserve exited non-zero on SIGTERM" >&2
    exit 1
}
SERVE_PID=
echo "batch-smoke: clean shutdown"
