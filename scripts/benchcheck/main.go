// Command benchcheck is the kernel bench-regression gate behind
// `make bench-kernels-check`. It parses `go test -bench` output (one or
// more runs per benchmark), reduces each benchmark to its median ns/op,
// and compares against the committed BENCH_kernels.json baseline: any
// kernel more than -threshold slower than its recorded median fails the
// gate, as does a baseline kernel missing from the fresh run (a silent
// rename would otherwise open a hole in the gate).
//
// With -update it instead rewrites the baseline JSON from the fresh run,
// stamping the host and active micro-kernel so the recorded numbers are
// attributable to a code path:
//
//	go run ./scripts/benchcheck -update -baseline BENCH_kernels.json bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"pulsarqr/internal/blas"
)

type baseline struct {
	Description string             `json:"description"`
	Host        hostInfo           `json:"host"`
	Benchmarks  map[string]measure `json:"benchmarks"`
}

type hostInfo struct {
	CPU         string `json:"cpu"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	Microkernel string `json:"microkernel"`
}

type measure struct {
	NsPerOp     float64 `json:"ns_per_op"`
	Gflops      float64 `json:"gflops"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// sample accumulates the per-run observations of one benchmark.
type sample struct {
	name   string
	ns     []float64
	gflops []float64
	allocs int64
}

func main() {
	basePath := flag.String("baseline", "BENCH_kernels.json", "committed baseline JSON")
	threshold := flag.Float64("threshold", 0.20, "max allowed fractional ns/op regression")
	update := flag.Bool("update", false, "rewrite the baseline from the fresh run instead of checking")
	features := flag.Bool("features", false, "print detected CPU features and the chosen micro-kernel, then exit")
	flag.Parse()
	if *features {
		fmt.Printf("cpu: %s\nfeatures: %s\nmicro-kernel: %s\n", cpuModel(), blas.CPUFeatures(), blas.MicroKernelName())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck [-baseline f] [-threshold x] [-update] bench-output.txt")
		os.Exit(2)
	}
	samples, order, err := parseBench(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	if len(order) == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: no benchmark lines in", flag.Arg(0))
		os.Exit(2)
	}
	if *update {
		if err := writeBaseline(*basePath, samples, order); err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		fmt.Printf("benchcheck: wrote %s (%d benchmarks, micro-kernel %s)\n",
			*basePath, len(order), blas.MicroKernelName())
		return
	}
	os.Exit(check(*basePath, samples, *threshold))
}

// parseBench reads `go test -bench` output, returning per-benchmark
// samples and the order benchmarks first appeared (for stable -update
// output).
func parseBench(path string) (map[string]*sample, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	samples := map[string]*sample{}
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		s := samples[name]
		if s == nil {
			s = &sample{name: name}
			samples[name] = s
			order = append(order, name)
		}
		// fields[1] is the iteration count; the rest are "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.ns = append(s.ns, v)
			case "Gflop/s":
				s.gflops = append(s.gflops, v)
			case "allocs/op":
				if int64(v) > s.allocs {
					s.allocs = int64(v)
				}
			}
		}
	}
	return samples, order, sc.Err()
}

// minOf is the reduction used for the fresh run in check mode: timing
// noise on a shared host is one-sided (preemption only ever slows a run),
// so the fastest of N samples is the most stable estimate of the kernel's
// true rate, and a real code regression raises the minimum just the same.
// The committed baseline stays a median (it is recorded once, deliberately,
// on a quiet host).
func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}

func check(basePath string, samples map[string]*sample, threshold float64) int {
	raw, err := os.ReadFile(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		return 2
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", basePath, err)
		return 2
	}
	if mk := blas.MicroKernelName(); mk != base.Host.Microkernel {
		fmt.Printf("note: active micro-kernel %q differs from baseline host %q; deltas reflect both code and kernel level\n",
			mk, base.Host.Microkernel)
	}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed := 0
	for _, name := range names {
		want := base.Benchmarks[name]
		s := samples[name]
		if s == nil || len(s.ns) == 0 {
			fmt.Printf("FAIL %-18s missing from this run (baseline %.0f ns/op)\n", name, want.NsPerOp)
			failed++
			continue
		}
		got := minOf(s.ns)
		delta := (got - want.NsPerOp) / want.NsPerOp
		status := "ok  "
		if delta > threshold {
			status = "FAIL"
			failed++
		}
		fmt.Printf("%s %-18s %9.0f ns/op (baseline %9.0f, %+6.1f%%, best of %d)\n",
			status, name, got, want.NsPerOp, 100*delta, len(s.ns))
	}
	if failed > 0 {
		fmt.Printf("benchcheck: %d kernel(s) regressed beyond %.0f%%\n", failed, 100*threshold)
		return 1
	}
	fmt.Printf("benchcheck: all %d kernels within %.0f%% of baseline\n", len(names), 100*threshold)
	return 0
}

// writeBaseline emits the baseline JSON with benchmarks in first-appearance
// order (matching the committed file's layout, which json.Marshal's sorted
// maps would scramble).
func writeBaseline(path string, samples map[string]*sample, order []string) error {
	cpu := cpuModel()
	var b strings.Builder
	b.WriteString("{\n")
	fmt.Fprintf(&b, "  %q: %q,\n", "description",
		"Kernel/BLAS benchmark baseline for `make bench-kernels` (medians of 5 runs, -benchtime 200ms).")
	fmt.Fprintf(&b, "  %q: {\n", "host")
	fmt.Fprintf(&b, "    %q: %q,\n", "cpu", cpu)
	fmt.Fprintf(&b, "    %q: %q,\n", "goos", runtime.GOOS)
	fmt.Fprintf(&b, "    %q: %q,\n", "goarch", runtime.GOARCH)
	fmt.Fprintf(&b, "    %q: %q\n", "microkernel", blas.MicroKernelName())
	b.WriteString("  },\n")
	fmt.Fprintf(&b, "  %q: {\n", "benchmarks")
	for i, name := range order {
		s := samples[name]
		fmt.Fprintf(&b, "    %q: {\n", name)
		fmt.Fprintf(&b, "      %q: %.1f,\n", "ns_per_op", median(s.ns))
		fmt.Fprintf(&b, "      %q: %s,\n", "gflops", strconv.FormatFloat(median(s.gflops), 'f', 2, 64))
		fmt.Fprintf(&b, "      %q: %d\n", "allocs_per_op", s.allocs)
		if i == len(order)-1 {
			b.WriteString("    }\n")
		} else {
			b.WriteString("    },\n")
		}
	}
	b.WriteString("  }\n}\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// cpuModel reads the CPU model name from /proc/cpuinfo, falling back to
// GOARCH on hosts without it.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err == nil {
		for _, line := range strings.Split(string(raw), "\n") {
			if name, val, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(name) == "model name" {
				return strings.TrimSpace(val)
			}
		}
	}
	return runtime.GOARCH
}
