// Package pulsarqr is a tree-based tile QR decomposition for tall-and-
// skinny dense matrices, executed on a 3D Virtual Systolic Array by a
// lightweight dataflow runtime — a Go reproduction of Yamazaki, Kurzak,
// Luszczek and Dongarra, "Design and Implementation of a Large Scale
// Tree-Based QR Decomposition Using a 3D Virtual Systolic Array and a
// Lightweight Runtime" (IPDPS 2014).
//
// The package exposes four execution engines over the same algorithm:
//
//   - Systolic: the paper's contribution — the factorization mapped onto a
//     3D array of Virtual Data Processors run by the PULSAR-style runtime
//     (workers + communication proxy per node);
//   - Domino: the authors' original 2D array (paper Fig. 9), flat-tree
//     reduction only;
//   - TaskSuperscalar: a QUARK-style dynamic task runtime (the class of
//     system the paper compares against);
//   - Sequential: the single-threaded reference.
//
// All engines execute the identical kernel sequence, so their results are
// elementwise equal; they differ only in how the work is scheduled. The
// same runtime also hosts a tile Cholesky factorization (Cholesky), and
// the vsa subpackage exposes the runtime itself for new algorithms.
//
// Quick start:
//
//	a := pulsarqr.RandomMatrix(4096, 256, 1)
//	f, err := pulsarqr.Factor(a, pulsarqr.DefaultOptions())
//	// f.R(), f.Solve(b), f.Residual(a), ...
package pulsarqr

import (
	"fmt"
	"math/rand"

	"pulsarqr/internal/chol"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/qr"
)

// Matrix is a column-major dense matrix of float64.
type Matrix = matrix.Mat

// Factorization is an implicit QR factorization: R plus the ordered
// Householder transformation log (see R, Solve, ApplyQT, ApplyQ, Residual).
type Factorization = qr.Factorization

// Tree selects the panel reduction tree.
type Tree = qr.TreeKind

// Tree kinds (see the paper §V-B): Hierarchical is a binary tree over
// flat-tree domains of H tiles and is the configuration the paper
// advocates for tall-skinny matrices.
const (
	Hierarchical = qr.HierarchicalTree
	Flat         = qr.FlatTree
	Binary       = qr.BinaryTree
)

// Boundary selects how flat-tree domain boundaries move between panels.
type Boundary = qr.BoundaryPolicy

// Boundary policies (paper Fig. 6): Shifted pipelines consecutive
// reductions and is the default; Fixed is kept for the ablation study.
const (
	Shifted = qr.ShiftedBoundary
	Fixed   = qr.FixedBoundary
)

// InterTree selects the second-level reduction over domain tops of the
// hierarchical tree.
type InterTree = qr.InterTree

// Second-level trees: BinaryInter is the paper's binary-on-flat choice;
// FlatInter is the flat-chain ablation.
const (
	BinaryInter = qr.BinaryInter
	FlatInter   = qr.FlatInter
)

// Engine selects how the factorization executes.
type Engine int

const (
	// Systolic runs the 3D virtual systolic array on the PULSAR-style
	// runtime.
	Systolic Engine = iota
	// TaskSuperscalar runs the same kernels under a QUARK-style dynamic
	// task runtime.
	TaskSuperscalar
	// Sequential runs the single-threaded reference.
	Sequential
	// Domino runs the authors' original 2D virtual systolic array (their
	// 2013 design, reproduced from Fig. 9 of the paper): one VDP per tile,
	// flat-tree reduction only — Options.Tree is ignored.
	Domino
)

func (e Engine) String() string {
	switch e {
	case TaskSuperscalar:
		return "task-superscalar"
	case Sequential:
		return "sequential"
	case Domino:
		return "domino"
	default:
		return "systolic"
	}
}

// Scheduling selects the worker scheme of the systolic runtime.
type Scheduling = pulsar.Scheduling

// Worker scheduling schemes (§IV-A): Lazy fires a ready VDP once and moves
// on (better lookahead, the paper's choice); Aggressive drains a VDP while
// it stays ready.
const (
	Lazy       = pulsar.Lazy
	Aggressive = pulsar.Aggressive
)

// Options configures a factorization.
type Options struct {
	// NB is the tile size; IB the kernels' inner blocking (paper: 192/48).
	NB, IB int
	// Tree selects the reduction tree; H sizes the flat-tree domains of
	// the hierarchical tree (paper: 6 or 12).
	Tree Tree
	H    int
	// Boundary selects shifted (default) or fixed domain boundaries.
	Boundary Boundary
	// Inter selects the second-level tree over domain tops (hierarchical
	// tree only; default is the paper's binary tree).
	Inter InterTree
	// Engine selects the execution engine (default Systolic).
	Engine Engine
	// Nodes and Threads shape the systolic runtime: Nodes simulated
	// distributed-memory nodes with Threads workers each. Defaults: 1
	// node, GOMAXPROCS-ish worker count chosen by the runtime when zero.
	// For TaskSuperscalar, Nodes*Threads is the worker count.
	Nodes, Threads int
	// Scheduling selects the systolic worker scheme.
	Scheduling Scheduling
}

// DefaultOptions returns the paper's preferred configuration at
// laptop-friendly tile sizes: hierarchical tree, shifted boundaries,
// systolic engine.
func DefaultOptions() Options {
	return Options{NB: 64, IB: 16, Tree: Hierarchical, H: 4, Engine: Systolic, Nodes: 1, Threads: 4}
}

func (o Options) internal() qr.Options {
	return qr.Options{NB: o.NB, IB: o.IB, Tree: o.Tree, H: o.H, Boundary: o.Boundary, Inter: o.Inter}
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix { return matrix.New(rows, cols) }

// RandomMatrix returns a rows×cols matrix with entries uniform in (−1, 1),
// deterministically seeded.
func RandomMatrix(rows, cols int, seed int64) *Matrix {
	return matrix.NewRand(rows, cols, rand.New(rand.NewSource(seed)))
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix { return matrix.Identity(n) }

// Factor computes the QR factorization of a (m ≥ n required). The input
// matrix is not modified.
func Factor(a *Matrix, opts Options) (*Factorization, error) {
	return factor(a, nil, opts)
}

// FactorWithRHS factors a while carrying the right-hand-side columns of b
// through every update, leaving QᵀB in the factorization — the cheapest
// route to a least-squares solve (see Factorization.SolveFromQTB). Neither
// input is modified.
func FactorWithRHS(a, b *Matrix, opts Options) (*Factorization, error) {
	if b == nil {
		return nil, fmt.Errorf("pulsarqr: FactorWithRHS needs a right-hand side")
	}
	return factor(a, b, opts)
}

func factor(a, b *Matrix, opts Options) (*Factorization, error) {
	if opts.NB <= 0 {
		opts.NB = 64
	}
	ta := matrix.FromDense(a, opts.NB)
	var tb *matrix.Tiled
	if b != nil {
		tb = matrix.FromDense(b, opts.NB)
	}
	io := opts.internal()
	switch opts.Engine {
	case Sequential:
		return qr.Factorize(ta, tb, io)
	case TaskSuperscalar:
		w := opts.Nodes * opts.Threads
		if w < 1 {
			w = 4
		}
		return qr.FactorizeQuark(ta, tb, io, w)
	case Domino:
		rc := qr.RunConfig{Nodes: opts.Nodes, Threads: opts.Threads, Scheduling: opts.Scheduling}
		return qr.FactorizeDomino(ta, tb, io, rc)
	default:
		rc := qr.RunConfig{Nodes: opts.Nodes, Threads: opts.Threads, Scheduling: opts.Scheduling}
		return qr.FactorizeVSA(ta, tb, io, rc)
	}
}

// LeastSquares returns the minimizer x of ‖A·x − b‖₂ for each column of b.
func LeastSquares(a, b *Matrix, opts Options) (*Matrix, error) {
	f, err := FactorWithRHS(a, b, opts)
	if err != nil {
		return nil, err
	}
	return f.SolveFromQTB(), nil
}

// CholeskyFactorization is a tile Cholesky result (A = L·Lᵀ); see L, Solve
// and Residual.
type CholeskyFactorization = chol.Factorization

// Cholesky computes the tile Cholesky factorization of the symmetric
// positive-definite matrix a — the second algorithm mapped onto the
// systolic runtime, demonstrating the generality the paper's conclusion
// claims. Only the lower triangle of a is referenced; the input is not
// modified. Engines Systolic (default) and Sequential are supported.
func Cholesky(a *Matrix, opts Options) (*CholeskyFactorization, error) {
	if opts.NB <= 0 {
		opts.NB = 64
	}
	ta := matrix.FromDense(a, opts.NB)
	co := chol.Options{NB: opts.NB}
	if opts.Engine == Sequential {
		return chol.Factorize(ta, co)
	}
	rc := chol.RunConfig{Nodes: opts.Nodes, Threads: opts.Threads, Scheduling: opts.Scheduling}
	return chol.FactorizeVSA(ta, co, rc)
}
