package pulsarqr

import (
	"time"

	"pulsarqr/internal/tuple"
)

// Small helpers shared by the benchmark harness.

// benchWorkers is the worker-goroutine count for real-hardware runs. It is
// fixed rather than derived from GOMAXPROCS so that the dataflow
// concurrency structure (traces, scheduling comparisons) is exercised even
// on hosts with few cores — workers are goroutines and timeslice on
// whatever cores exist.
func benchWorkers() int { return 4 }

func tupleOf(parts ...int) tuple.Tuple { return tuple.New(parts...) }

func testingClock() time.Time { return time.Now() }

func secondsSince(t time.Time) float64 { return time.Since(t).Seconds() }
