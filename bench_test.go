package pulsarqr

// The benchmark harness regenerates every figure of the paper's evaluation
// (§VI) and the ablations DESIGN.md calls out. Large-scale numbers come
// from the discrete-event simulator on the calibrated Cray XT5 model
// (Kraken); real-hardware cross-checks run the actual systolic runtime on
// this host. Custom metrics carry the quantities the paper plots:
// Gflop/s per configuration, overlap percentages, and baseline ratios.
//
//	go test -bench=Fig10 .        # paper Figure 10
//	go test -bench=Fig11 .        # paper Figure 11
//	go test -bench=Fig7 .         # paper Figure 7
//	go test -bench=SectionVIA .   # §VI-A baseline comparison
//	go test -bench=Ablation .     # nb/h/scheduling ablations
//	go test -bench=Real .         # real runs on this host

import (
	"fmt"
	"testing"

	"pulsarqr/internal/kernels"
	"pulsarqr/internal/matrix"
	"pulsarqr/internal/pulsar"
	"pulsarqr/internal/qr"
	"pulsarqr/internal/simulate"
	"pulsarqr/internal/trace"
)

// simBench runs one simulated configuration and reports its rate.
func simBench(b *testing.B, m, n int, o qr.Options, mach simulate.Machine, p simulate.Profile) simulate.Result {
	b.Helper()
	var r simulate.Result
	for i := 0; i < b.N; i++ {
		r = simulate.Run(simulate.Workload{M: m, N: n, Opts: o}, mach, p)
	}
	b.ReportMetric(r.Gflops, "Gflop/s")
	b.ReportMetric(r.Seconds, "model-s")
	b.ReportMetric(r.Utilization*100, "util-%")
	return r
}

// BenchmarkFig10AsymptoticScaling regenerates paper Figure 10: Gflop/s of
// the three reduction trees at n = 4608 on 9216 cores while the row count
// grows from 23K to 737K.
func BenchmarkFig10AsymptoticScaling(b *testing.B) {
	mach := simulate.Kraken(768) // 9216 cores
	n := 4608
	for _, m := range []int{23040, 92160, 184320, 368640, 737280} {
		for _, tree := range []qr.TreeKind{qr.HierarchicalTree, qr.BinaryTree, qr.FlatTree} {
			o := qr.Options{NB: 192, IB: 48, Tree: tree, H: 12}
			b.Run(fmt.Sprintf("m=%d/%v", m, tree), func(b *testing.B) {
				simBench(b, m, n, o, mach, simulate.SystolicProfile)
			})
		}
	}
}

// BenchmarkFig11StrongScaling regenerates paper Figure 11: strong scaling
// of the three trees at m×n = 368640×4608 from 480 to 15360 cores.
func BenchmarkFig11StrongScaling(b *testing.B) {
	m, n := 368640, 4608
	for _, cores := range []int{480, 1920, 3840, 7680, 15360} {
		mach := simulate.Kraken(cores / 12)
		for _, tree := range []qr.TreeKind{qr.HierarchicalTree, qr.BinaryTree, qr.FlatTree} {
			o := qr.Options{NB: 192, IB: 48, Tree: tree, H: 12}
			b.Run(fmt.Sprintf("cores=%d/%v", cores, tree), func(b *testing.B) {
				simBench(b, m, n, o, mach, simulate.SystolicProfile)
			})
		}
	}
}

// BenchmarkFig7DomainOverlap regenerates paper Figure 7 quantitatively:
// real systolic runs on this host with fixed versus shifted domain
// boundaries, reporting the fraction of the makespan during which work of
// two or more panels overlaps (the pipelining the shifted policy buys).
func BenchmarkFig7DomainOverlap(b *testing.B) {
	threads := benchWorkers()
	for _, bp := range []qr.BoundaryPolicy{qr.FixedBoundary, qr.ShiftedBoundary} {
		b.Run(bp.String(), func(b *testing.B) {
			var overlap, util float64
			for i := 0; i < b.N; i++ {
				rec := trace.NewRecorder()
				a := matrix.FromDense(RandomMatrix(3072, 384, 17), 64)
				o := qr.Options{NB: 64, IB: 16, Tree: qr.HierarchicalTree, H: 4, Boundary: bp}
				rc := qr.RunConfig{Nodes: 1, Threads: threads, FireHook: rec.Hook()}
				if _, err := qr.FactorizeVSA(a, nil, o, rc); err != nil {
					b.Fatal(err)
				}
				tl := trace.Build(rec.Events())
				overlap = 100 * tl.PanelOverlap(nil)
				util = 100 * tl.Utilization()
			}
			b.ReportMetric(overlap, "overlap-%")
			b.ReportMetric(util, "util-%")
		})
	}
}

// BenchmarkSectionVIABaselines regenerates the §VI-A comparison: the tree
// QR against the ScaLAPACK/LibSci analytic model (paper: ≥3× slower) and
// against a generic task-superscalar runtime profile (paper: ≥10 % slower
// in strong scaling).
func BenchmarkSectionVIABaselines(b *testing.B) {
	m, n := 368640, 4608
	o := qr.Options{NB: 192, IB: 48, Tree: qr.HierarchicalTree, H: 12}
	for _, cores := range []int{480, 1920, 7680} {
		mach := simulate.Kraken(cores / 12)
		b.Run(fmt.Sprintf("cores=%d/systolic", cores), func(b *testing.B) {
			r := simBench(b, m, n, o, mach, simulate.SystolicProfile)
			sc := simulate.DefaultScaLAPACK().Gflops(mach, m, n)
			b.ReportMetric(r.Gflops/sc, "vs-scalapack-x")
		})
		b.Run(fmt.Sprintf("cores=%d/generic-runtime", cores), func(b *testing.B) {
			rg := simBench(b, m, n, o, mach, simulate.GenericProfile)
			rs := simulate.Run(simulate.Workload{M: m, N: n, Opts: o}, mach, simulate.SystolicProfile)
			b.ReportMetric(100*(rs.Gflops-rg.Gflops)/rs.Gflops, "gap-%")
		})
		b.Run(fmt.Sprintf("cores=%d/scalapack-model", cores), func(b *testing.B) {
			var gf float64
			for i := 0; i < b.N; i++ {
				gf = simulate.DefaultScaLAPACK().Gflops(mach, m, n)
			}
			b.ReportMetric(gf, "Gflop/s")
		})
	}
}

// BenchmarkWeakScaling runs the weak-scaling regime §II motivates (fixed
// rows per core, growing machine): m = 48·cores at n = 4608 sweeps the
// same matrix sizes as Figure 10. The paper reports generic runtimes lose
// ≥20 % here; the gap-% metric tracks our modeled equivalent.
func BenchmarkWeakScaling(b *testing.B) {
	n := 4608
	o := qr.Options{NB: 192, IB: 48, Tree: qr.HierarchicalTree, H: 12}
	for _, cores := range []int{480, 1920, 7680, 15360} {
		m := 48 * cores
		mach := simulate.Kraken(cores / 12)
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			r := simBench(b, m, n, o, mach, simulate.SystolicProfile)
			g := simulate.Run(simulate.Workload{M: m, N: n, Opts: o}, mach, simulate.GenericProfile)
			b.ReportMetric(r.Gflops/float64(mach.TotalCores()), "Gflop/s/core")
			b.ReportMetric(100*(r.Gflops-g.Gflops)/r.Gflops, "generic-gap-%")
		})
	}
}

// BenchmarkDominoVsFlat3D checks the paper's §VI claim that the 3D array's
// flat-tree configuration performs equivalently to the original 2D domino
// design (the extra binary-tree hand-off hop is insignificant).
func BenchmarkDominoVsFlat3D(b *testing.B) {
	threads := benchWorkers()
	m, n := 4096, 256
	run := func(b *testing.B, f func(*matrix.Tiled) (*qr.Factorization, error)) {
		var gf float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			a := matrix.FromDense(RandomMatrix(m, n, 29), 128)
			b.StartTimer()
			start := testingClock()
			if _, err := f(a); err != nil {
				b.Fatal(err)
			}
			gf = kernels.FlopsQR(m, n) / 1e9 / secondsSince(start)
		}
		b.ReportMetric(gf, "Gflop/s")
	}
	o := qr.Options{NB: 128, IB: 32, Tree: qr.FlatTree}
	rc := qr.RunConfig{Nodes: 1, Threads: threads}
	b.Run("domino-2d", func(b *testing.B) {
		run(b, func(a *matrix.Tiled) (*qr.Factorization, error) {
			return qr.FactorizeDomino(a, nil, o, rc)
		})
	})
	b.Run("flat-3d", func(b *testing.B) {
		run(b, func(a *matrix.Tiled) (*qr.Factorization, error) {
			return qr.FactorizeVSA(a, nil, o, rc)
		})
	})
}

// BenchmarkAblationParameters sweeps the paper's tunables (§VI: nb ∈
// {192, 240}, h ∈ {6, 12}) on the simulated machine.
func BenchmarkAblationParameters(b *testing.B) {
	mach := simulate.Kraken(640)
	m, n := 368640, 4608
	for _, nb := range []int{192, 240} {
		for _, h := range []int{6, 12} {
			o := qr.Options{NB: nb, IB: 48, Tree: qr.HierarchicalTree, H: h}
			b.Run(fmt.Sprintf("nb=%d/h=%d", nb, h), func(b *testing.B) {
				simBench(b, m, n, o, mach, simulate.SystolicProfile)
			})
		}
	}
}

// BenchmarkAblationInterTree compares second-level reduction trees over
// the domain tops: the paper's binary tree versus a flat chain. The flat
// chain serializes the merges, reverting much of the hierarchical tree's
// advantage — the reason the paper picks binary-on-flat.
func BenchmarkAblationInterTree(b *testing.B) {
	mach := simulate.Kraken(640)
	m, n := 368640, 4608
	for _, it := range []qr.InterTree{qr.BinaryInter, qr.FlatInter} {
		o := qr.Options{NB: 192, IB: 48, Tree: qr.HierarchicalTree, H: 12, Inter: it}
		b.Run(it.String(), func(b *testing.B) {
			simBench(b, m, n, o, mach, simulate.SystolicProfile)
		})
	}
}

// BenchmarkAblationScheduling compares the lazy and aggressive worker
// schemes on real runs (§V-D: lazy utilizes cores better through
// lookahead).
func BenchmarkAblationScheduling(b *testing.B) {
	threads := benchWorkers()
	for _, sched := range []pulsar.Scheduling{pulsar.Lazy, pulsar.Aggressive} {
		b.Run(sched.String(), func(b *testing.B) {
			var gf float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				a := matrix.FromDense(RandomMatrix(3072, 384, 5), 64)
				o := qr.Options{NB: 64, IB: 16, Tree: qr.HierarchicalTree, H: 4}
				rc := qr.RunConfig{Nodes: 1, Threads: threads, Scheduling: sched}
				b.StartTimer()
				start := testingClock()
				if _, err := qr.FactorizeVSA(a, nil, o, rc); err != nil {
					b.Fatal(err)
				}
				gf = kernels.FlopsQR(3072, 384) / 1e9 / secondsSince(start)
			}
			b.ReportMetric(gf, "Gflop/s")
		})
	}
}

// BenchmarkRealTreeComparison cross-checks the headline ordering on real
// hardware: the three trees factor the same tall-skinny matrix on this
// host's cores through the actual systolic runtime.
func BenchmarkRealTreeComparison(b *testing.B) {
	threads := benchWorkers()
	m, n := 6144, 384
	for _, tc := range []struct {
		name string
		tree qr.TreeKind
		h    int
	}{
		{"hierarchical", qr.HierarchicalTree, 6},
		{"binary", qr.BinaryTree, 1},
		{"flat", qr.FlatTree, 1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var gf float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				a := matrix.FromDense(RandomMatrix(m, n, 23), 128)
				o := qr.Options{NB: 128, IB: 32, Tree: tc.tree, H: tc.h}
				rc := qr.RunConfig{Nodes: 1, Threads: threads}
				b.StartTimer()
				start := testingClock()
				if _, err := qr.FactorizeVSA(a, nil, o, rc); err != nil {
					b.Fatal(err)
				}
				gf = kernels.FlopsQR(m, n) / 1e9 / secondsSince(start)
			}
			b.ReportMetric(gf, "Gflop/s")
		})
	}
}

// BenchmarkEngines compares the three execution engines through the public
// API on identical inputs.
func BenchmarkEngines(b *testing.B) {
	threads := benchWorkers()
	for _, e := range []Engine{Sequential, Systolic, TaskSuperscalar} {
		b.Run(e.String(), func(b *testing.B) {
			a := RandomMatrix(4096, 256, 3)
			opts := Options{NB: 128, IB: 32, Tree: Hierarchical, H: 4,
				Engine: e, Nodes: 1, Threads: threads}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Factor(a, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernels measures the six tile kernels at the paper-shaped
// blocking (scaled to nb=128, ib=32).
func BenchmarkKernels(b *testing.B) {
	nb, ib := 128, 32
	mk := func() (*matrix.Mat, *matrix.Mat, *matrix.Mat) {
		a1 := RandomMatrix(nb, nb, 1)
		a2 := RandomMatrix(nb, nb, 2)
		t := matrix.New(ib, nb)
		return a1, a2, t
	}
	b.Run("dgeqrt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			a, _, t := mk()
			b.StartTimer()
			kernels.Dgeqrt(ib, a, t)
		}
		b.ReportMetric(kernels.FlopsGeqrt(nb, nb)/1e9, "Gflop/op")
	})
	b.Run("dtsqrt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			a1, a2, t := mk()
			a1u := a1.UpperTriangle()
			b.StartTimer()
			kernels.Dtsqrt(ib, a1u, a2, t)
		}
		b.ReportMetric(kernels.FlopsTsqrt(nb, nb)/1e9, "Gflop/op")
	})
	b.Run("dttqrt", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			a1, a2, t := mk()
			a1u, a2u := a1.UpperTriangle(), a2.UpperTriangle()
			b.StartTimer()
			kernels.Dttqrt(ib, a1u, a2u, t)
		}
		b.ReportMetric(kernels.FlopsTtqrt(nb)/1e9, "Gflop/op")
	})
	b.Run("dormqr", func(b *testing.B) {
		v, _, t := mk()
		kernels.Dgeqrt(ib, v, t)
		c := RandomMatrix(nb, nb, 3)
		kernels.Dormqr(true, ib, v, t, c) // warm the pooled workspace
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			kernels.Dormqr(true, ib, v, t, c)
		}
		b.ReportMetric(kernels.FlopsOrmqr(nb, nb, nb)/1e9, "Gflop/op")
	})
	b.Run("dtsmqr", func(b *testing.B) {
		a1, a2, t := mk()
		a1u := a1.UpperTriangle()
		kernels.Dtsqrt(ib, a1u, a2, t)
		c1, c2 := RandomMatrix(nb, nb, 4), RandomMatrix(nb, nb, 5)
		kernels.Dtsmqr(true, ib, a2, t, c1, c2) // warm the pooled workspace
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			kernels.Dtsmqr(true, ib, a2, t, c1, c2)
		}
		b.ReportMetric(kernels.FlopsTsmqr(nb, nb, nb)/1e9, "Gflop/op")
	})
	b.Run("dttmqr", func(b *testing.B) {
		a1, a2, t := mk()
		a1u, a2u := a1.UpperTriangle(), a2.UpperTriangle()
		kernels.Dttqrt(ib, a1u, a2u, t)
		c1, c2 := RandomMatrix(nb, nb, 6), RandomMatrix(nb, nb, 7)
		kernels.Dttmqr(true, ib, a2u, t, c1, c2) // warm the pooled workspace
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			kernels.Dttmqr(true, ib, a2u, t, c1, c2)
		}
		b.ReportMetric(kernels.FlopsTtmqr(nb, nb)/1e9, "Gflop/op")
	})
}

// BenchmarkRuntimeFiringOverhead measures the PULSAR runtime's per-firing
// cost with empty VDP bodies — the overhead the paper's light-weight
// design minimizes.
func BenchmarkRuntimeFiringOverhead(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		const chainLen, packets = 64, 32
		s := pulsar.New(pulsar.Config{Nodes: 1, ThreadsPerNode: 4})
		buildOverheadChain(s, chainLen, packets)
		b.StartTimer()
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func buildOverheadChain(s *pulsar.VSA, chainLen, packets int) {
	for c := 0; c < chainLen; c++ {
		s.NewVDP(tupleOf(c), packets, func(v *pulsar.VDP) {
			v.Push(0, v.Pop(0))
		}, "", 1, 1)
	}
	for c := 0; c+1 < chainLen; c++ {
		s.Connect(tupleOf(c), 0, tupleOf(c+1), 0, 8, false)
	}
	s.Input(tupleOf(0), 0, 8)
	s.Output(tupleOf(chainLen-1), 0, 8)
	for p := 0; p < packets; p++ {
		s.Inject(tupleOf(0), 0, pulsar.NewPacket([]int{p}))
	}
}
