module pulsarqr

go 1.22
